"""The concurrent query service fronting :class:`repro.query.Engine`.

``QueryService`` is the serving layer the ROADMAP's "heavy traffic"
north-star lands on: clients open lightweight sessions and submit
declarative queries from their own threads; the service applies admission
control (bounded in-flight work, backpressure rejections), skips repeated
work through the plan cache and the semantic result cache, fuses
concurrent same-source E-selections into shared scans via the coalescing
scheduler, and drives the engine's morsel scheduler with per-query tags
so scheduled work is attributable per query.

On top of that sits the **QoS layer** (:meth:`QueryService.submit_qos`):
per-query deadlines, priorities, and recall floors.  A query whose
deadline is provably unmeetable is shed with
:class:`~repro.errors.DeadlineExceededError` before it wastes an
execution slot; one that states a recall floor may instead be *degraded*
to a quantized prescreen-only scan that fits the deadline — and the
response carries an explicit ``degraded`` flag, never a silent
approximation.

Throughput — not single-query latency — is the service's contract, but
correctness is non-negotiable: every result returned **without** the
``degraded`` flag is bit-identical to executing the same query serially
on the underlying engine.  Degraded results bypass the result cache and
singleflight entirely, so an approximate table can never be replayed as
an exact answer.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..algebra.physical_planner import ExecutionReport, execute
from ..config import get_config
from ..core.cost_model import quantized_recall_estimate
from ..core.quantized_join import quantized_eselect
from ..errors import DeadlineExceededError, ServiceError, SessionClosedError
from ..obs.adapter import publish_service
from ..obs.capture import WorkloadRecorder
from ..obs.critical_path import SlowQueryLog
from ..obs.explain import render_explain
from ..obs.export import prometheus_text, traces_jsonl
from ..obs.metrics import registry as metrics_registry
from ..obs.server import ObservabilityServer
from ..obs.trace import Tracer, current_trace, query_scope, span
from ..query.builder import Engine, QueryBuilder
from ..relational.table import Table
from ..reliability.breaker import breakers
from ..reliability.faults import active_injector, maybe_inject
from ..reliability.health import ServiceHealth
from ..reliability.retry import RetryBudget
from ..reliability.runtime import current_retry_budget, deadline_scope
from ..vector.norms import normalize_vector
from .admission import AdmissionController
from .coalescer import (
    CoalescingScheduler,
    SharedScanRequest,
    materialize_selection,
    unwrap_shared_scan,
)
from .plan_cache import PlanCache
from .qos import (
    DEFAULT_PRIORITY,
    ExecTimeTracker,
    QoSParams,
    QoSStats,
    QueryResponse,
)
from .semantic_cache import SemanticResultCache, params_signature, table_versions


class _InflightResult:
    """Singleflight slot: one execution that duplicates wait on."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Table | None = None
        self.error: BaseException | None = None


class SessionHandle:
    """A client's handle onto the service (context-manager friendly).

    Sessions are cheap — one per connected client — and carry per-session
    counters plus the tag prefix that attributes engine morsels to the
    session's queries.
    """

    def __init__(self, service: "QueryService", name: str) -> None:
        self.service = service
        self.name = name
        self.queries = 0
        self.errors = 0
        self._closed = False
        self._lock = threading.Lock()

    def query(self, table_name: str) -> QueryBuilder:
        """Start building a declarative query against the shared catalog."""
        return self.service.engine.query(table_name)

    def execute(
        self,
        query: "QueryBuilder | object",
        *,
        timeout_s: float | None = None,
        explain_analyze: bool = False,
    ) -> Table:
        """Submit a query (builder or logical plan) and block for its result.

        With ``explain_analyze=True`` the return value is the full
        :class:`~repro.service.qos.QueryResponse` (carrying the rendered
        span tree in ``.explain``) instead of the bare table.
        """
        seq = self._next_seq()
        try:
            return self.service.submit(
                query,
                tag=f"{self.name}/q{seq}",
                timeout_s=timeout_s,
                explain_analyze=explain_analyze,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            with self._lock:
                self.errors += 1
            raise

    def execute_qos(
        self,
        query: "QueryBuilder | object",
        *,
        deadline_s: float | None = None,
        priority: int = DEFAULT_PRIORITY,
        min_recall: float | None = None,
        timeout_s: float | None = None,
        explain_analyze: bool = False,
    ) -> QueryResponse:
        """Submit with QoS terms; block for the annotated response.

        Args:
            deadline_s: deadline relative to now (seconds).  The query is
                shed with ``DeadlineExceededError`` if it provably cannot
                meet it; a late-but-started query still returns (with
                ``deadline_met=False``).
            priority: larger values win admission and scheduling first.
            min_recall: recall floor under which the service may degrade
                a deadline-pressed query to a quantized prescreen-only
                scan (response flagged ``degraded``).  ``None`` forbids
                degradation.
            timeout_s: admission backpressure bound (overload wait).
            explain_analyze: force-trace this query and attach the
                rendered span tree to ``response.explain``.
        """
        seq = self._next_seq()
        try:
            return self.service.submit_qos(
                query,
                deadline_s=deadline_s,
                priority=priority,
                min_recall=min_recall,
                tag=f"{self.name}/q{seq}",
                timeout_s=timeout_s,
                explain_analyze=explain_analyze,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            with self._lock:
                self.errors += 1
            raise

    def _next_seq(self) -> int:
        with self._lock:
            if self._closed:
                raise SessionClosedError(f"session {self.name!r} is closed")
            self.queries += 1
            return self.queries

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SessionHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class ServiceStats:
    """Service-level counters (cache/admission details live in their
    components; :meth:`QueryService.stats_snapshot` merges everything)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    coalesced: int = 0
    direct: int = 0
    result_cache_hits: int = 0
    #: Queries that piggybacked on an identical in-flight execution
    #: (singleflight): the result cache cannot catch duplicates that
    #: arrive while the first copy is still running, this does.
    singleflight_hits: int = 0


class QueryService:
    """Concurrent query service: admission + coalescing + caching + QoS.

    Args:
        engine: the query engine to front (catalog, models, indexes and
            shared stores all come from it).
        max_inflight: admission bound on concurrently executing queries.
        admission_timeout_s: backpressure wait before rejecting.
        coalesce: enable cross-query shared-scan batching.
        coalesce_window_s: how long a scan-group leader waits for
            concurrently-submitted queries before executing (the *upper
            bound* when the adaptive window is on).
        coalesce_max_batch: max queries fused into one shared scan.
        plan_cache_size: optimized-plan template cache capacity.
        result_cache_size: semantic result cache capacity (0 disables).
        result_cache_ttl_s: result cache entry time-to-live.
        near_dup_threshold: opt-in cosine threshold for approximate
            result-cache hits (``None`` keeps results exact).
        adaptive_window: size coalesce windows from the observed arrival
            rate instead of the fixed ``coalesce_window_s``.
        result_cache_tinylfu: enable TinyLFU cost-aware admission on the
            result cache.
        obs_enabled: master switch for per-query trace sampling.
        obs_sample_rate: fraction of submissions traced (deterministic
            counter-hash schedule; ``explain_analyze`` bypasses it).
        obs_ring_size: completed traces retained for
            :meth:`recent_traces`.
        obs_sites: comma-separated span-site allowlist (empty: all).
        capture_path: JSONL workload-capture file; empty/``None`` (the
            default) disables the flight recorder entirely.
        capture_max_mb: capture file size bound before rotation.
        capture_keep: rotated capture generations retained.
        slow_k: slow-query log capacity (top-K slowest retired traces).
        http_port: start the live introspection endpoint on this port
            (``0`` picks a free one; ``None``, the default, serves
            nothing until :meth:`serve_http` is called).
        shard_procs: shard worker *processes* backing the coalesced scan
            (``0`` disables; requires ``coalesce=True`` to take effect).
            The pool publishes column stores into shared memory once and
            fans group scans out across the processes; results stay
            bit-identical to serial, and pool failures degrade to the
            in-process scan.

    Every knob defaults to the ``REPRO_SERVICE_*`` / ``REPRO_QOS_*`` /
    ``REPRO_OBS_*`` configuration.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        max_inflight: int | None = None,
        admission_timeout_s: float | None = None,
        coalesce: bool = True,
        coalesce_window_s: float | None = None,
        coalesce_max_batch: int | None = None,
        plan_cache_size: int | None = None,
        result_cache_size: int | None = None,
        result_cache_ttl_s: float | None = None,
        near_dup_threshold: float | None = None,
        adaptive_window: bool | None = None,
        result_cache_tinylfu: bool | None = None,
        obs_enabled: bool | None = None,
        obs_sample_rate: float | None = None,
        obs_ring_size: int | None = None,
        obs_sites: str | None = None,
        capture_path: str | None = None,
        capture_max_mb: float | None = None,
        capture_keep: int | None = None,
        slow_k: int | None = None,
        http_port: int | None = None,
        shard_procs: int | None = None,
    ) -> None:
        config = get_config()
        self.engine = engine
        self.admission = AdmissionController(
            config.service_max_inflight if max_inflight is None else max_inflight,
            timeout_s=(
                config.service_admission_timeout_s
                if admission_timeout_s is None
                else admission_timeout_s
            ),
        )
        self.plans = PlanCache(
            config.service_plan_cache_size
            if plan_cache_size is None
            else plan_cache_size
        )
        self.results = SemanticResultCache(
            capacity=(
                config.service_result_cache_size
                if result_cache_size is None
                else result_cache_size
            ),
            ttl_s=(
                config.service_result_cache_ttl_s
                if result_cache_ttl_s is None
                else result_cache_ttl_s
            ),
            near_dup_threshold=(
                config.service_near_dup_threshold
                if near_dup_threshold is None
                else near_dup_threshold
            ),
            tinylfu=(
                config.qos_cache_tinylfu
                if result_cache_tinylfu is None
                else result_cache_tinylfu
            ),
        )
        self.coalescer = (
            CoalescingScheduler(
                engine,
                window_s=(
                    config.service_coalesce_window_s
                    if coalesce_window_s is None
                    else coalesce_window_s
                ),
                max_batch=(
                    config.service_coalesce_max_batch
                    if coalesce_max_batch is None
                    else coalesce_max_batch
                ),
                inflight_probe=lambda: self.admission.inflight,
                adaptive=(
                    config.qos_adaptive_window
                    if adaptive_window is None
                    else adaptive_window
                ),
                target_batch=config.qos_window_target_batch,
            )
            if coalesce
            else None
        )
        procs = config.shard_procs if shard_procs is None else shard_procs
        self.shard_pool = None
        if procs and self.coalescer is not None:
            from ..shard import ShardPool

            self.shard_pool = ShardPool(engine, procs)
            self.coalescer.shard_pool = self.shard_pool
        self.stats = ServiceStats()
        self.qos = QoSStats()
        self.qos_tracker = ExecTimeTracker(
            alpha=config.qos_ewma_alpha,
            safety=config.qos_deadline_safety,
            min_samples=config.qos_min_estimate_samples,
        )
        self._stats_lock = threading.Lock()
        self._inflight_results: dict[tuple, _InflightResult] = {}
        self._singleflight_lock = threading.Lock()
        self._sessions = 0
        self._closed = False
        self.tracer = Tracer(
            enabled=obs_enabled,
            sample_rate=obs_sample_rate,
            ring_size=obs_ring_size,
            sites=obs_sites,
        )
        self.metrics_registry = metrics_registry()
        #: Hot-path metric handles, resolved once: submission outcomes
        #: and a latency histogram are the only metrics the service
        #: updates live — everything else is pull-published by
        #: :meth:`metrics` through the adapter.
        self._m_completed = self.metrics_registry.counter(
            "repro_queries_total", outcome="completed"
        )
        self._m_failed = self.metrics_registry.counter(
            "repro_queries_total", outcome="failed"
        )
        self._m_shed = self.metrics_registry.counter(
            "repro_queries_total", outcome="shed"
        )
        self._m_rejected = self.metrics_registry.counter(
            "repro_queries_total", outcome="rejected"
        )
        self._m_latency = self.metrics_registry.histogram(
            "repro_query_latency_seconds"
        )
        self._query_ids = itertools.count(1)
        self.slow_log = SlowQueryLog(
            config.obs_slow_k if slow_k is None else slow_k
        )
        capture = (
            config.obs_capture_path if capture_path is None else capture_path
        )
        self.recorder: WorkloadRecorder | None = (
            WorkloadRecorder(
                capture,
                max_bytes=(
                    None
                    if capture_max_mb is None
                    else int(capture_max_mb * 2**20)
                ),
                keep=capture_keep,
            )
            if capture
            else None
        )
        self._http_server: ObservabilityServer | None = None
        port = config.obs_http_port if http_port is None else http_port
        if port is not None:
            self.serve_http(port=port)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, name: str | None = None) -> SessionHandle:
        """Open a cheap per-client session handle."""
        with self._stats_lock:
            self._sessions += 1
            seq = self._sessions
        return SessionHandle(self, name or f"session-{seq}")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: "QueryBuilder | object",
        *,
        tag: str = "svc/anon",
        timeout_s: float | None = None,
        explain_analyze: bool = False,
    ) -> Table:
        """Admit, plan, and execute one query; blocks until the result.

        The no-QoS entry point: no deadline, default priority, never
        degraded — the returned table is always bit-identical to serial
        execution.  Called from client threads; the service has no worker
        pool of its own; concurrency is whatever the callers bring,
        bounded by admission control.

        With ``explain_analyze=True`` the query is force-traced and the
        full :class:`~repro.service.qos.QueryResponse` is returned
        instead of the bare table: ``.explain`` carries the rendered
        per-query span tree, ``.trace`` the raw spans.
        """
        response = self.submit_qos(
            query,
            min_recall=1.0,
            tag=tag,
            timeout_s=timeout_s,
            explain_analyze=explain_analyze,
        )
        return response if explain_analyze else response.table

    def submit_qos(
        self,
        query: "QueryBuilder | object",
        *,
        deadline_s: float | None = None,
        priority: int = DEFAULT_PRIORITY,
        min_recall: float | None = None,
        tag: str = "svc/anon",
        timeout_s: float | None = None,
        explain_analyze: bool = False,
    ) -> QueryResponse:
        """Submit with QoS terms; return the result plus its QoS metadata.

        The deadline drives three decisions, all *before* execution:

        * already expired (at submission or while queued for admission)
          → shed with :class:`~repro.errors.DeadlineExceededError`;
        * execution-time estimate proves full precision unmeetable and
          ``min_recall`` admits a quantized path that fits → run the
          degraded (prescreen-only) scan, response flagged ``degraded``;
        * estimate proves even the cheapest allowed path unmeetable →
          shed with ``DeadlineExceededError``.

        A query that *starts* in time but finishes late is returned
        anyway, with ``deadline_met=False`` — shedding never discards
        computed results.

        Args:
            deadline_s: deadline relative to now, in seconds (``None``:
                no deadline).
            priority: larger values win admission first among waiters.
            min_recall: recall floor for degradation; ``None`` falls back
                to ``config.qos_default_min_recall`` (itself ``None`` by
                default, forbidding degradation).
            tag: morsel-attribution tag for the engine scheduler.
            timeout_s: admission backpressure bound.
            explain_analyze: force-trace this query (bypassing sampling)
                and attach the rendered span tree to ``response.explain``.
        """
        if self._closed:
            raise ServiceError("service is shut down")
        start = time.perf_counter()
        config = get_config()
        if min_recall is None:
            min_recall = config.qos_default_min_recall
        qos = QoSParams.from_relative(
            deadline_s, priority=priority, min_recall=min_recall, now=start
        )
        plan = query.plan if isinstance(query, QueryBuilder) else query
        if qos.deadline is not None:
            with self._stats_lock:
                self.qos.with_deadline += 1
        query_id = f"q{next(self._query_ids)}"
        trace = self.tracer.maybe_trace(query_id, tag, force=explain_analyze)
        recorder = self.recorder
        arrival_s = recorder.offset() if recorder is not None else 0.0
        response = None
        error: BaseException | None = None
        try:
            with query_scope(trace):
                response = self._submit_scoped(
                    plan, qos, tag, start, timeout_s=timeout_s
                )
        except BaseException as exc:
            error = exc
            raise
        finally:
            # Shed / rejected / failed queries retire into the ring too —
            # those are exactly the traces an operator wants to see.
            if trace is not None:
                self.tracer.record(trace)
                self.slow_log.offer(trace)
            if recorder is not None:
                try:
                    recorder.record(
                        plan=plan,
                        tag=tag,
                        query_id=query_id,
                        arrival_s=arrival_s,
                        deadline_s=deadline_s,
                        priority=priority,
                        min_recall=min_recall,
                        response=response,
                        error=error,
                    )
                except Exception:
                    # A full disk must degrade capture, never serving.
                    pass
        response.query_id = query_id
        response.trace = trace
        if explain_analyze and trace is not None:
            response.explain = render_explain(trace)
        return response

    def _submit_scoped(
        self,
        plan,
        qos: QoSParams,
        tag: str,
        start: float,
        *,
        timeout_s: float | None,
    ) -> QueryResponse:
        """The admitted lifetime of one submission (runs inside its scope)."""
        config = get_config()
        with span("admission") as sp:
            sp.set(priority=qos.priority)
            try:
                self.admission.acquire(
                    timeout_s=timeout_s,
                    priority=qos.priority,
                    deadline=qos.deadline,
                )
            except DeadlineExceededError:
                with self._stats_lock:
                    self.qos.shed_expired += 1
                self._m_shed.inc()
                raise
            except Exception:
                self._m_rejected.inc()
                raise
        with self._stats_lock:
            self.stats.submitted += 1
        try:
            # The ambient scope carries the deadline and a per-query retry
            # budget down into every engine run this query performs, so
            # morsel retries are deadline-aware and budget-capped without
            # threading QoS through operator signatures.
            with deadline_scope(
                qos.deadline,
                retry_budget=RetryBudget(config.retry_budget),
            ):
                response = self._run_admitted(plan, qos, tag, start)
            with self._stats_lock:
                self.stats.completed += 1
                if response.degraded:
                    self.qos.degraded += 1
                if response.deadline_met is True:
                    self.qos.deadline_met += 1
                elif response.deadline_met is False:
                    self.qos.deadline_missed += 1
            self._m_completed.inc()
            self._m_latency.observe(response.latency_s)
            return response
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            with self._stats_lock:
                self.stats.failed += 1
            if isinstance(exc, DeadlineExceededError):
                self._m_shed.inc()
            else:
                self._m_failed.inc()
            raise
        finally:
            self.admission.release()

    def _run_admitted(
        self, plan, qos: QoSParams, tag: str, start: float
    ) -> QueryResponse:
        """Plan, consult caches, decide shed/degrade/full, and execute."""
        optimized, fkey, params = self.plans.optimize(
            plan, catalog=self.engine.catalog
        )
        # The cache key covers everything that can change a result:
        # table data versions, the index epoch (registering an index
        # can flip the physical access path — approximate for
        # HNSW/IVF), and the precision config (quantized scans are
        # approximate for top-k, so results cached under one
        # REPRO_PRECISION mode must not survive a config change).
        config = get_config()
        versions = (
            *table_versions(optimized, self.engine.catalog),
            ("__indexes__", self.engine.index_epoch),
            (
                "__precision__",
                config.default_precision,
                config.default_min_recall,
                config.default_rerank_multiple,
            ),
        )
        with span("cache.lookup") as sp:
            cached = self.results.lookup(fkey, versions, params)
            sp.set(hit=cached is not None)
        if cached is not None:
            with self._stats_lock:
                self.stats.result_cache_hits += 1
            return self._respond(cached, qos, start, cache_hit=True)
        remaining = qos.remaining()
        if remaining is not None:
            estimate = self.qos_tracker.estimate("full")
            if estimate is not None and estimate > remaining:
                # Full precision provably misses the deadline.  Degrade if
                # the recall floor admits a quantized path that fits,
                # otherwise shed now rather than burn a slot for nothing.
                precision = self._degraded_precision(optimized, qos.min_recall)
                degraded_est = self.qos_tracker.estimate("degraded")
                if precision is None or (
                    degraded_est is not None and degraded_est > remaining
                ):
                    with self._stats_lock:
                        self.qos.shed_unmeetable += 1
                    with span("qos.decision") as sp:
                        sp.set(
                            action="shed",
                            estimate_s=estimate,
                            remaining_s=remaining,
                        )
                    raise DeadlineExceededError(
                        f"estimated execution {estimate:.3g}s exceeds the "
                        f"{remaining:.3g}s left before the deadline"
                    )
                with span("qos.degraded") as sp:
                    sp.set(precision=precision, remaining_s=remaining)
                    exec_start = time.perf_counter()
                    retry = self.engine.executor.retry_policy.bind(
                        deadline=qos.deadline, budget=current_retry_budget()
                    )
                    table = retry.call(
                        lambda: self._execute_degraded(
                            optimized, precision, tag
                        )
                    )
                    self.qos_tracker.observe(
                        "degraded", time.perf_counter() - exec_start
                    )
                # Degraded tables bypass the result cache and singleflight:
                # an approximate answer must never be replayed as exact.
                return self._respond(
                    table, qos, start, degraded=True, precision=precision
                )
        # Singleflight: an identical query already executing means this
        # one just waits for that result — the result cache cannot catch
        # duplicates that arrive mid-execution.
        sf_key = (fkey, versions, params_signature(params))
        with self._singleflight_lock:
            slot = self._inflight_results.get(sf_key)
            owner = slot is None
            if owner:
                slot = _InflightResult()
                self._inflight_results[sf_key] = slot
        if not owner:
            with span("singleflight.wait"):
                slot.done.wait()
            if slot.error is not None:
                raise slot.error
            with self._stats_lock:
                self.stats.singleflight_hits += 1
            assert slot.result is not None
            return self._respond(slot.result, qos, start)
        try:
            exec_start = time.perf_counter()
            result = self._dispatch(optimized, qos, tag)
            exec_seconds = time.perf_counter() - exec_start
            self.qos_tracker.observe("full", exec_seconds)
            # The seconds it took to compute weigh this entry in TinyLFU
            # cost-aware admission duels.
            with span("cache.store") as sp:
                sp.set(cost_s=exec_seconds)
                self.results.store(
                    fkey, versions, params, result, cost=exec_seconds
                )
            slot.result = result
        except (KeyboardInterrupt, SystemExit):
            # Waiters still get a resolved future — a clean service error,
            # not the interpreter-level interrupt, which belongs to the
            # thread that received it.
            slot.error = ServiceError("execution interrupted")
            raise
        except Exception as exc:
            slot.error = exc
            raise
        finally:
            with self._singleflight_lock:
                del self._inflight_results[sf_key]
            slot.done.set()
        return self._respond(result, qos, start)

    def _dispatch(self, optimized, qos: QoSParams, tag: str) -> Table:
        """Execute a planned query under the service-level retry wrapper.

        Engine runs already retry at morsel granularity; this outer layer
        covers transient faults raised *outside* a scheduler run — kernel
        calls made inline on the dispatching thread, store builds, the
        ``service.dispatch`` injection site itself.  Queries are pure, so
        whole-query re-execution is as bit-safe as morsel re-execution;
        the shared per-query budget (ambient scope) caps the total.
        """

        def attempt() -> Table:
            maybe_inject("service.dispatch")
            return self._execute(optimized, tag)

        retry = self.engine.executor.retry_policy.bind(
            deadline=qos.deadline, budget=current_retry_budget()
        )
        return retry.call(attempt)

    @staticmethod
    def _respond(
        table: Table,
        qos: QoSParams,
        start: float,
        *,
        degraded: bool = False,
        precision: str = "fp32",
        cache_hit: bool = False,
    ) -> QueryResponse:
        now = time.perf_counter()
        met = None if qos.deadline is None else now <= qos.deadline
        return QueryResponse(
            table=table,
            degraded=degraded,
            precision=precision,
            latency_s=now - start,
            deadline_met=met,
            cache_hit=cache_hit,
        )

    def _execute(self, optimized, tag: str) -> Table:
        request = self._shared_scan_request(optimized, tag)
        if request is not None:
            with self._stats_lock:
                self.stats.coalesced += 1
            with span("execute") as sp:
                sp.set(mode="coalesced")
                return self.coalescer.submit(request)
        with self._stats_lock:
            self.stats.direct += 1
        ctx = self.engine.context(tag=tag)
        report = ExecutionReport()
        with span("execute") as sp:
            result = execute(optimized, ctx, report=report)
            sp.set(
                mode="direct",
                strategies=report.strategies,
                fallbacks=len(report.fallbacks),
            )
        return result

    # ------------------------------------------------------------------
    # Degraded (quantized prescreen-only) execution
    # ------------------------------------------------------------------
    def _degraded_precision(
        self, optimized, min_recall: float | None
    ) -> str | None:
        """Cheapest quantized codec clearing the recall floor, or ``None``.

        ``None`` also covers plans the degraded path cannot run (anything
        but ``Project*/Limit*(ESelect(Scan))``) — those queries shed
        rather than degrade.
        """
        if min_recall is None or min_recall > 1.0:
            return None
        if unwrap_shared_scan(optimized) is None:
            return None
        rerank = get_config().default_rerank_multiple
        for precision in ("pq", "int8"):  # cheapest codes first
            estimate = quantized_recall_estimate(
                precision, rerank_multiple=rerank
            )
            if estimate >= min_recall:
                return precision
        return None

    def _execute_degraded(self, optimized, precision: str, tag: str) -> Table:
        """Quantized prescreen-only E-selection for a deadline-pressed query.

        Streams the compressed codes (shared, build-once via the engine
        context's quantized store cache) instead of the fp32 matrix; the
        emitted rows may miss true neighbours within ``1 - min_recall``,
        which is exactly what the caller's recall floor licensed.
        """
        from ..algebra.physical_planner import _embed_column

        match = unwrap_shared_scan(optimized)
        assert match is not None  # guarded by _degraded_precision
        wrappers, node = match
        ctx = self.engine.context(tag=tag)
        table = ctx.catalog.get(node.child.table_name)
        vectors = _embed_column(table, node.column, node.model_name, ctx)
        key = (node.child.table_name, node.column, node.model_name)
        store = ctx.quant_store_for(key, vectors, precision)
        query = node.query
        if not isinstance(query, np.ndarray):
            query = ctx.store_for(node.model_name).embed_items([query])[0]
        result = quantized_eselect(store, query, node.condition)
        return materialize_selection(
            table, result.ids, result.scores, node.score_column, wrappers
        )

    def _shared_scan_request(
        self, optimized, tag: str
    ) -> SharedScanRequest | None:
        """Build a coalescer request when the plan and config allow it."""
        if self.coalescer is None:
            return None
        if get_config().default_precision in ("int8", "pq"):
            # Quantized scan substitution is a per-query planner decision;
            # those queries take the normal path (still sharing the
            # context-cached quantized stores).
            return None
        match = unwrap_shared_scan(optimized)
        if match is None:
            return None
        wrappers, node = match
        query = node.query
        if not isinstance(query, np.ndarray):
            store = self.engine.embed_store_for(node.model_name)
            query = store.embed_items([query])[0]
        if query.ndim != 1:
            return None  # let the serial path raise its usual error
        qraw = np.asarray(query, dtype=np.float32)
        return SharedScanRequest(
            node=node,
            wrappers=wrappers,
            qvec=normalize_vector(qraw),
            qraw=qraw,
            tag=tag,
            # The group leader executes on *its* thread; handing the
            # ambient trace over lets it attribute the shared scan back.
            trace=current_trace(),
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate_table(self, name: str) -> int:
        """Eagerly drop cached results referencing ``name``."""
        return self.results.invalidate_table(name)

    def stats_snapshot(self) -> dict:
        """One merged dict of every layer's counters."""
        with self._stats_lock:
            service = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "coalesced": self.stats.coalesced,
                "direct": self.stats.direct,
                "result_cache_hits": self.stats.result_cache_hits,
                "singleflight_hits": self.stats.singleflight_hits,
                "sessions": self._sessions,
            }
            qos = self.qos.snapshot()
        qos["exec_estimates"] = self.qos_tracker.snapshot()
        # Every component snapshot below is taken under that component's
        # own lock (``stats_snapshot`` / ``EngineStats.snapshot``), so
        # each block is internally consistent even while queries run.
        snapshot = {
            "service": service,
            "qos": qos,
            "admission": self.admission.stats_snapshot(),
            "plan_cache": self.plans.stats_snapshot(),
            "result_cache": self.results.stats_snapshot(),
        }
        if self.coalescer is not None:
            snapshot["coalescer"] = self.coalescer.stats_snapshot()
        if self.shard_pool is not None:
            snapshot["shard"] = self.shard_pool.stats_snapshot()
        snapshot["engine"] = self.engine.executor.stats.snapshot()
        return snapshot

    def health(self) -> ServiceHealth:
        """One coherent reliability snapshot of the running service.

        ``status`` is ``"degraded"`` (not an error — the service still
        serves) whenever any circuit breaker is routing around a failing
        access path or the watchdog has observed worker loss; breaker,
        retry, watchdog, fault-injection, QoS, and service counters come
        along so the cause is visible in the same picture.
        """
        engine_snap = self.engine.executor.stats.snapshot()
        registry = breakers()
        open_breakers = registry.open_count()
        watchdog = {
            "stalls": engine_snap["watchdog_stalls"],
            "worker_deaths": engine_snap["worker_deaths"],
            "respawns": engine_snap["worker_respawns"],
            "reenqueued_tasks": engine_snap["reenqueued_tasks"],
        }
        injector = active_injector()
        with self._stats_lock:
            service = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
            }
            qos = self.qos.snapshot()
        shard = (
            self.shard_pool.worker_health()
            if self.shard_pool is not None
            else {}
        )
        status = (
            "ok"
            if open_breakers == 0
            and engine_snap["worker_deaths"] == 0
            and shard.get("worker_deaths", 0) == 0
            and shard.get("stalls", 0) == 0
            else "degraded"
        )
        return ServiceHealth(
            status=status,
            breakers=registry.snapshot(),
            open_breakers=open_breakers,
            retries=self.engine.executor.retry_policy.stats.snapshot(),
            watchdog=watchdog,
            faults=injector.stats.snapshot() if injector is not None else {},
            qos=qos,
            service=service,
            shard=shard,
        )

    # ------------------------------------------------------------------
    # Observability exports
    # ------------------------------------------------------------------
    def metrics(self) -> str:
        """Prometheus-style text exposition of every layer's counters.

        Pull-based: each call syncs the ``*Stats`` snapshots into the
        process-wide registry through the adapter, then renders the
        whole registry (including the live counters and any breaker
        transition counts) as text.
        """
        publish_service(self, self.metrics_registry)
        return prometheus_text(self.metrics_registry)

    def recent_traces(self) -> list:
        """Completed sampled/forced traces, oldest first (bounded ring)."""
        return self.tracer.recent()

    def traces_jsonl(self) -> str:
        """The trace ring as JSON-lines (one trace dict per line)."""
        return traces_jsonl(self.tracer.recent())

    def slow_queries(self) -> list[dict]:
        """Top-K slowest retired traces with their critical paths.

        Each entry is a precomputed summary (wall/CPU, hotspots by self
        time, root-to-leaf critical path), slowest first.  Populated
        only from *traced* queries — at the default sample rate that is
        a sample of the slow tail, not a census.
        """
        return self.slow_log.snapshot()

    def serve_http(
        self, *, host: str = "127.0.0.1", port: int = 0
    ) -> ObservabilityServer:
        """Start (or return) the live introspection endpoint.

        Exposes ``/metrics``, ``/health``, ``/traces``, and ``/slow`` on
        a daemon thread; ``port=0`` binds a free port, readable from the
        returned server's ``.port``.  Idempotent: a second call returns
        the running server.
        """
        if self._http_server is None:
            self._http_server = ObservabilityServer(self, host=host, port=port)
        return self._http_server

    def shutdown(
        self, *, drain: bool = True, timeout_s: float | None = None
    ) -> bool:
        """Refuse new submissions; optionally drain in-flight work.

        With ``drain=True`` (the default) blocks until every admitted
        query has completed — the graceful shutdown clients expect: no
        accepted work is abandoned mid-execution.  Returns ``True`` once
        idle, ``False`` if ``timeout_s`` elapsed with work still in
        flight (the service stays closed either way).
        """
        self._closed = True
        idle = True
        if drain:
            idle = self.admission.wait_idle(timeout_s)
        if self._http_server is not None:
            self._http_server.close()
            self._http_server = None
        if self.recorder is not None:
            self.recorder.close()
        if self.shard_pool is not None:
            # Terminates workers and unlinks every shared-memory segment;
            # runs even on a failed drain so segments can never leak.
            self.shard_pool.close()
        return idle

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
