"""The concurrent query service fronting :class:`repro.query.Engine`.

``QueryService`` is the serving layer the ROADMAP's "heavy traffic"
north-star lands on: clients open lightweight sessions and submit
declarative queries from their own threads; the service applies admission
control (bounded in-flight work, backpressure rejections), skips repeated
work through the plan cache and the semantic result cache, fuses
concurrent same-source E-selections into shared scans via the coalescing
scheduler, and drives the engine's morsel scheduler with per-query tags
so scheduled work is attributable per query.

Throughput — not single-query latency — is the service's contract, but
correctness is non-negotiable: every result returned is bit-identical to
executing the same query serially on the underlying engine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..algebra.physical_planner import ExecutionReport, execute
from ..config import get_config
from ..errors import ServiceError, SessionClosedError
from ..query.builder import Engine, QueryBuilder
from ..relational.table import Table
from ..vector.norms import normalize_vector
from .admission import AdmissionController
from .coalescer import CoalescingScheduler, SharedScanRequest, unwrap_shared_scan
from .plan_cache import PlanCache
from .semantic_cache import SemanticResultCache, params_signature, table_versions


class _InflightResult:
    """Singleflight slot: one execution that duplicates wait on."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Table | None = None
        self.error: BaseException | None = None


class SessionHandle:
    """A client's handle onto the service (context-manager friendly).

    Sessions are cheap — one per connected client — and carry per-session
    counters plus the tag prefix that attributes engine morsels to the
    session's queries.
    """

    def __init__(self, service: "QueryService", name: str) -> None:
        self.service = service
        self.name = name
        self.queries = 0
        self.errors = 0
        self._closed = False
        self._lock = threading.Lock()

    def query(self, table_name: str) -> QueryBuilder:
        """Start building a declarative query against the shared catalog."""
        return self.service.engine.query(table_name)

    def execute(
        self, query: "QueryBuilder | object", *, timeout_s: float | None = None
    ) -> Table:
        """Submit a query (builder or logical plan) and block for its result."""
        with self._lock:
            if self._closed:
                raise SessionClosedError(f"session {self.name!r} is closed")
            self.queries += 1
            seq = self.queries
        try:
            return self.service.submit(
                query, tag=f"{self.name}/q{seq}", timeout_s=timeout_s
            )
        except BaseException:
            with self._lock:
                self.errors += 1
            raise

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SessionHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class ServiceStats:
    """Service-level counters (cache/admission details live in their
    components; :meth:`QueryService.stats_snapshot` merges everything)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    coalesced: int = 0
    direct: int = 0
    result_cache_hits: int = 0
    #: Queries that piggybacked on an identical in-flight execution
    #: (singleflight): the result cache cannot catch duplicates that
    #: arrive while the first copy is still running, this does.
    singleflight_hits: int = 0


class QueryService:
    """Concurrent query service: admission + coalescing + caching.

    Args:
        engine: the query engine to front (catalog, models, indexes and
            shared stores all come from it).
        max_inflight: admission bound on concurrently executing queries.
        admission_timeout_s: backpressure wait before rejecting.
        coalesce: enable cross-query shared-scan batching.
        coalesce_window_s: how long a scan-group leader waits for
            concurrently-submitted queries before executing.
        coalesce_max_batch: max queries fused into one shared scan.
        plan_cache_size: optimized-plan template cache capacity.
        result_cache_size: semantic result cache capacity (0 disables).
        result_cache_ttl_s: result cache entry time-to-live.
        near_dup_threshold: opt-in cosine threshold for approximate
            result-cache hits (``None`` keeps results exact).

    Every knob defaults to the ``REPRO_SERVICE_*`` configuration.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        max_inflight: int | None = None,
        admission_timeout_s: float | None = None,
        coalesce: bool = True,
        coalesce_window_s: float | None = None,
        coalesce_max_batch: int | None = None,
        plan_cache_size: int | None = None,
        result_cache_size: int | None = None,
        result_cache_ttl_s: float | None = None,
        near_dup_threshold: float | None = None,
    ) -> None:
        config = get_config()
        self.engine = engine
        self.admission = AdmissionController(
            config.service_max_inflight if max_inflight is None else max_inflight,
            timeout_s=(
                config.service_admission_timeout_s
                if admission_timeout_s is None
                else admission_timeout_s
            ),
        )
        self.plans = PlanCache(
            config.service_plan_cache_size
            if plan_cache_size is None
            else plan_cache_size
        )
        self.results = SemanticResultCache(
            capacity=(
                config.service_result_cache_size
                if result_cache_size is None
                else result_cache_size
            ),
            ttl_s=(
                config.service_result_cache_ttl_s
                if result_cache_ttl_s is None
                else result_cache_ttl_s
            ),
            near_dup_threshold=(
                config.service_near_dup_threshold
                if near_dup_threshold is None
                else near_dup_threshold
            ),
        )
        self.coalescer = (
            CoalescingScheduler(
                engine,
                window_s=(
                    config.service_coalesce_window_s
                    if coalesce_window_s is None
                    else coalesce_window_s
                ),
                max_batch=(
                    config.service_coalesce_max_batch
                    if coalesce_max_batch is None
                    else coalesce_max_batch
                ),
                inflight_probe=lambda: self.admission.inflight,
            )
            if coalesce
            else None
        )
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._inflight_results: dict[tuple, _InflightResult] = {}
        self._singleflight_lock = threading.Lock()
        self._sessions = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, name: str | None = None) -> SessionHandle:
        with self._stats_lock:
            self._sessions += 1
            seq = self._sessions
        return SessionHandle(self, name or f"session-{seq}")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: "QueryBuilder | object",
        *,
        tag: str = "svc/anon",
        timeout_s: float | None = None,
    ) -> Table:
        """Admit, plan, and execute one query; blocks until the result.

        Called from client threads — the service has no worker pool of its
        own; concurrency is whatever the callers bring, bounded by
        admission control.
        """
        if self._closed:
            raise ServiceError("service is shut down")
        plan = query.plan if isinstance(query, QueryBuilder) else query
        self.admission.acquire(timeout_s=timeout_s)
        with self._stats_lock:
            self.stats.submitted += 1
        try:
            optimized, fkey, params = self.plans.optimize(
                plan, catalog=self.engine.catalog
            )
            # The cache key covers everything that can change a result:
            # table data versions, the index epoch (registering an index
            # can flip the physical access path — approximate for
            # HNSW/IVF), and the precision config (quantized scans are
            # approximate for top-k, so results cached under one
            # REPRO_PRECISION mode must not survive a config change).
            config = get_config()
            versions = (
                *table_versions(optimized, self.engine.catalog),
                ("__indexes__", self.engine.index_epoch),
                (
                    "__precision__",
                    config.default_precision,
                    config.default_min_recall,
                    config.default_rerank_multiple,
                ),
            )
            cached = self.results.lookup(fkey, versions, params)
            if cached is not None:
                with self._stats_lock:
                    self.stats.result_cache_hits += 1
                    self.stats.completed += 1
                return cached
            # Singleflight: an identical query already executing means
            # this one just waits for that result — the result cache
            # cannot catch duplicates that arrive mid-execution.
            sf_key = (fkey, versions, params_signature(params))
            with self._singleflight_lock:
                slot = self._inflight_results.get(sf_key)
                owner = slot is None
                if owner:
                    slot = _InflightResult()
                    self._inflight_results[sf_key] = slot
            if not owner:
                slot.done.wait()
                if slot.error is not None:
                    raise slot.error
                with self._stats_lock:
                    self.stats.singleflight_hits += 1
                    self.stats.completed += 1
                assert slot.result is not None
                return slot.result
            try:
                result = self._execute(optimized, tag)
                self.results.store(fkey, versions, params, result)
                slot.result = result
            except BaseException as exc:
                slot.error = exc
                raise
            finally:
                with self._singleflight_lock:
                    del self._inflight_results[sf_key]
                slot.done.set()
            with self._stats_lock:
                self.stats.completed += 1
            return result
        except BaseException:
            with self._stats_lock:
                self.stats.failed += 1
            raise
        finally:
            self.admission.release()

    def _execute(self, optimized, tag: str) -> Table:
        request = self._shared_scan_request(optimized, tag)
        if request is not None:
            with self._stats_lock:
                self.stats.coalesced += 1
            return self.coalescer.submit(request)
        with self._stats_lock:
            self.stats.direct += 1
        ctx = self.engine.context(tag=tag)
        report = ExecutionReport()
        return execute(optimized, ctx, report=report)

    def _shared_scan_request(
        self, optimized, tag: str
    ) -> SharedScanRequest | None:
        """Build a coalescer request when the plan and config allow it."""
        if self.coalescer is None:
            return None
        if get_config().default_precision in ("int8", "pq"):
            # Quantized scan substitution is a per-query planner decision;
            # those queries take the normal path (still sharing the
            # context-cached quantized stores).
            return None
        match = unwrap_shared_scan(optimized)
        if match is None:
            return None
        wrappers, node = match
        query = node.query
        if not isinstance(query, np.ndarray):
            store = self.engine.embed_store_for(node.model_name)
            query = store.embed_items([query])[0]
        if query.ndim != 1:
            return None  # let the serial path raise its usual error
        qraw = np.asarray(query, dtype=np.float32)
        return SharedScanRequest(
            node=node,
            wrappers=wrappers,
            qvec=normalize_vector(qraw),
            qraw=qraw,
            tag=tag,
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate_table(self, name: str) -> int:
        """Eagerly drop cached results referencing ``name``."""
        return self.results.invalidate_table(name)

    def stats_snapshot(self) -> dict:
        """One merged dict of every layer's counters."""
        with self._stats_lock:
            service = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "coalesced": self.stats.coalesced,
                "direct": self.stats.direct,
                "result_cache_hits": self.stats.result_cache_hits,
                "singleflight_hits": self.stats.singleflight_hits,
                "sessions": self._sessions,
            }
        snapshot = {
            "service": service,
            "admission": self.admission.stats.snapshot(),
            "plan_cache": self.plans.stats.snapshot(),
            "result_cache": self.results.stats.snapshot(),
        }
        if self.coalescer is not None:
            snapshot["coalescer"] = self.coalescer.stats.snapshot()
        engine_stats = self.engine.executor.stats
        snapshot["engine"] = {
            "runs": engine_stats.runs,
            "morsels_dispatched": engine_stats.morsels_dispatched,
            "steals": engine_stats.steals,
            "tagged_queries": len(engine_stats.by_tag),
        }
        return snapshot

    def shutdown(self) -> None:
        """Refuse new submissions (in-flight queries drain normally)."""
        self._closed = True

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
