"""Concurrent query service: the serving layer over the query engine.

``repro.service`` turns the single-query :class:`repro.query.Engine` into
a multi-client service:

* :mod:`~repro.service.admission` — bounded in-flight queries with
  backpressure statistics,
* :mod:`~repro.service.coalescer` — cross-query shared-scan batching:
  concurrent E-selections on the same (table, column, model) fuse into
  one stacked blocked scan, demuxed per query through streaming top-k
  heaps, bit-identical to serial execution,
* :mod:`~repro.service.plan_cache` — repeated query shapes skip the
  optimizer via parameterized plan-fingerprint templates,
* :mod:`~repro.service.semantic_cache` — exact and (opt-in) cosine
  near-duplicate result caching with TTL, LRU eviction, and catalog-
  version invalidation,
* :mod:`~repro.service.service` — the :class:`QueryService` facade and
  per-client :class:`SessionHandle`.
"""

from .admission import AdmissionController, AdmissionStats
from .coalescer import (
    CoalescerStats,
    CoalescingScheduler,
    SharedScanRequest,
    unwrap_shared_scan,
)
from .plan_cache import PlanCache, PlanCacheStats, fingerprint, parameterize, substitute
from .semantic_cache import ResultCacheStats, SemanticResultCache, table_versions
from .service import QueryService, ServiceStats, SessionHandle

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CoalescerStats",
    "CoalescingScheduler",
    "PlanCache",
    "PlanCacheStats",
    "QueryService",
    "ResultCacheStats",
    "SemanticResultCache",
    "ServiceStats",
    "SessionHandle",
    "SharedScanRequest",
    "fingerprint",
    "parameterize",
    "substitute",
    "table_versions",
    "unwrap_shared_scan",
]
