"""Concurrent query service: the serving layer over the query engine.

``repro.service`` turns the single-query :class:`repro.query.Engine` into
a multi-client service:

* :mod:`~repro.service.admission` — bounded in-flight queries with
  backpressure statistics, priority-ordered admission, and deadline
  shedding of queued waiters,
* :mod:`~repro.service.coalescer` — cross-query shared-scan batching:
  concurrent E-selections on the same (table, column, model) fuse into
  one stacked blocked scan, demuxed per query through streaming top-k
  heaps, bit-identical to serial execution; gather windows optionally
  adapt to the observed arrival rate,
* :mod:`~repro.service.plan_cache` — repeated query shapes skip the
  optimizer via parameterized plan-fingerprint templates,
* :mod:`~repro.service.semantic_cache` — exact and (opt-in) cosine
  near-duplicate result caching with TTL, LRU eviction, catalog-version
  invalidation, and (opt-in) TinyLFU cost-aware admission,
* :mod:`~repro.service.qos` — the QoS primitives: deadlines, priorities,
  EWMA estimators, and the explicit ``degraded`` response contract,
* :mod:`~repro.service.service` — the :class:`QueryService` facade and
  per-client :class:`SessionHandle`,
* :mod:`~repro.service.async_front` — :class:`AsyncQueryService`, an
  asyncio submission front holding thousands of idle connections over a
  bounded dispatcher pool.
"""

from .admission import AdmissionController, AdmissionStats
from .async_front import AsyncFrontStats, AsyncQueryService
from .coalescer import (
    CoalescerStats,
    CoalescingScheduler,
    SharedScanRequest,
    materialize_selection,
    unwrap_shared_scan,
)
from .plan_cache import PlanCache, PlanCacheStats, fingerprint, parameterize, substitute
from .qos import (
    DEFAULT_PRIORITY,
    ArrivalRateEstimator,
    EWMA,
    ExecTimeTracker,
    FrequencySketch,
    QoSParams,
    QoSStats,
    QueryResponse,
)
from .semantic_cache import ResultCacheStats, SemanticResultCache, table_versions
from .service import QueryService, ServiceStats, SessionHandle

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "ArrivalRateEstimator",
    "AsyncFrontStats",
    "AsyncQueryService",
    "CoalescerStats",
    "CoalescingScheduler",
    "DEFAULT_PRIORITY",
    "EWMA",
    "ExecTimeTracker",
    "FrequencySketch",
    "PlanCache",
    "PlanCacheStats",
    "QoSParams",
    "QoSStats",
    "QueryResponse",
    "QueryService",
    "ResultCacheStats",
    "SemanticResultCache",
    "ServiceStats",
    "SessionHandle",
    "SharedScanRequest",
    "fingerprint",
    "materialize_selection",
    "parameterize",
    "substitute",
    "table_versions",
    "unwrap_shared_scan",
]
