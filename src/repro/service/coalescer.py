"""Cross-query shared-scan batching: the service-level tensor formulation.

The paper's economics argument is that embedding operators pay off when
model invocations and scans are *batched*; within a query the tensor join
does this with GEMM blocks.  The coalescing scheduler applies the same
amortization **across queries**: concurrently-submitted E-selections that
hit the same ``(table, column, model)`` scan source are fused into one
blocked scan whose right-hand operand stacks every query vector — one
GEMM streams the relation once for the whole group instead of once per
query — and per-query results are demuxed from the shared score blocks
through a :class:`~repro.vector.topk.StreamingTopK` heap (one row per
session's query).

Exactness: the shared scan is only a *prescreen*.  Each query's emitted
rows are re-scored with the shape-stable exact kernel and re-selected by
:func:`~repro.core.eselect.exact_topk_select` /
:func:`~repro.core.eselect.exact_threshold_select` — the same contract
the serial scan uses — so coalesced results are bit-identical to serial
execution.  Threshold demux is provably complete via the prescreen
margin; top-k demux verifies a completeness guard (heap floor at least a
margin below the running k-th exact score) and falls back to the serial
scan for that one query when the guard cannot prove the heap covered it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..algebra.logical import (
    ESelectNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
)
from ..core.conditions import ThresholdCondition, TopKCondition
from ..core.eselect import (
    PRESCREEN_MARGIN,
    TOPK_PRESCREEN_PAD,
    eselect,
    exact_threshold_select,
    exact_topk_select,
)
from ..errors import ServiceError, ShardError
from ..obs.trace import span
from ..relational.column import Column
from ..relational.schema import DataType, Field as SchemaField
from ..relational.table import Table
from ..vector.topk import StreamingTopK, top_k_per_row
from .qos import ArrivalRateEstimator

#: Fallback shared-scan block budget when no buffer budget is configured.
DEFAULT_SCAN_BLOCK_BYTES = 8 << 20


def _floor_pruned_candidates(
    by_query: np.ndarray, floor: np.ndarray, offset: int
):
    """Block candidates that can still enter an already-full top-k heap.

    A row prunes out when its approximate score is below its query's
    current heap floor — the floor only rises, so such a row could never
    be retained by the streaming merge anyway (the candidate superset is
    unchanged; only wasted per-block selection work is skipped, one
    vectorized compare per cell instead of a partition sort).  Returns
    ``(ids, scores)`` padded to the widest query with ``-inf`` scores —
    harmless against a heap that already holds ``k`` real candidates —
    or ``None`` when no row survives.
    """
    mask = by_query >= floor[:, None]
    counts = mask.sum(axis=1)
    hmax = int(counts.max()) if len(counts) else 0
    if hmax == 0:
        return None
    b = by_query.shape[0]
    ids = np.full((b, hmax), -1, dtype=np.int64)
    scores = np.full((b, hmax), -np.inf, dtype=np.float32)
    for j in np.nonzero(counts)[0]:
        idx = np.nonzero(mask[j])[0]
        ids[j, : len(idx)] = idx + offset
        scores[j, : len(idx)] = by_query[j, idx]
    return ids, scores


def unwrap_shared_scan(
    plan: LogicalNode,
) -> tuple[list[LogicalNode], ESelectNode] | None:
    """Match ``Project*/Limit*( ESelect( Scan(t) ) )`` plan shapes.

    Returns ``(wrappers outermost-first, eselect node)`` when the plan is
    a coalesceable E-selection over a base table scan, else ``None``.
    """
    wrappers: list[LogicalNode] = []
    node = plan
    while isinstance(node, (ProjectNode, LimitNode)):
        wrappers.append(node)
        node = node.child
    if not isinstance(node, ESelectNode):
        return None
    if not isinstance(node.child, ScanNode):
        return None
    if not isinstance(node.condition, (ThresholdCondition, TopKCondition)):
        return None
    return wrappers, node


@dataclass
class SharedScanRequest:
    """One query's slice of a shared scan group."""

    node: ESelectNode
    wrappers: list[LogicalNode]
    #: Unit-normalized query vector (the eselect query contract).
    qvec: np.ndarray
    #: The resolved query vector *before* normalization — the serial
    #: fallback hands this to :func:`~repro.core.eselect.eselect` so its
    #: internal normalization reproduces ``qvec`` bit-for-bit
    #: (``normalize_vector`` is not idempotent at the last ulp).
    qraw: np.ndarray
    tag: str
    result: Table | None = None
    error: BaseException | None = None
    #: The submitting query's :class:`~repro.obs.trace.Trace` (or ``None``
    #: when unsampled).  The group *leader* runs the shared scan on its own
    #: thread, so follower traces cannot see it ambiently; the leader
    #: attributes the work back by appending completed *foreign* spans
    #: (``coalesce.scan``, ``rescore``) to every member's trace.
    trace: object | None = None

    @property
    def key(self) -> tuple[str, str, str]:
        child = self.node.child
        assert isinstance(child, ScanNode)
        return (child.table_name, self.node.column, self.node.model_name)


class _Group:
    """Requests gathered within one coalescing window."""

    __slots__ = ("key", "requests", "closed", "done")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.requests: list[SharedScanRequest] = []
        self.closed = False
        self.done = threading.Event()


@dataclass
class CoalescerStats:
    groups: int = 0
    coalesced_queries: int = 0
    #: Requests that shared a scan row with an identical concurrent query
    #: vector (the service-level embed-once win on hot traffic).
    deduped_queries: int = 0
    max_batch: int = 0
    shared_scan_blocks: int = 0
    fallbacks: int = 0
    #: Groups whose shared scan ran fanned out on the shard-process pool.
    sharded_groups: int = 0
    #: Groups that meant to shard but fell back in-process (pool error).
    shard_fallbacks: int = 0

    def snapshot(self) -> dict:
        return {
            "groups": self.groups,
            "coalesced_queries": self.coalesced_queries,
            "deduped_queries": self.deduped_queries,
            "max_batch": self.max_batch,
            "shared_scan_blocks": self.shared_scan_blocks,
            "fallbacks": self.fallbacks,
            "sharded_groups": self.sharded_groups,
            "shard_fallbacks": self.shard_fallbacks,
        }


class CoalescingScheduler:
    """Groups concurrent same-source E-selections into shared scans.

    The first submission for a source becomes the group *leader*: it waits
    up to a gather window for concurrently-arriving queries on the same
    key (skipping the wait when the in-flight probe says nobody else is
    in flight), snapshots the group, and executes one shared blocked scan
    for all of them on the engine's morsel scheduler.  Followers block on
    the group's event and pick up their demuxed result.

    With ``adaptive=True`` the gather window is sized per group from an
    EWMA of observed arrival gaps — roughly the time needed for
    ``target_batch`` more queries to arrive — instead of the fixed
    ``window_s``.  ``window_s`` then acts as the upper bound, so the
    adaptive window never waits *longer* than the fixed one: heavy
    traffic batches in a fraction of the fixed window, light traffic
    pays (almost) nothing.
    """

    def __init__(
        self,
        engine,
        *,
        window_s: float = 0.002,
        max_batch: int = 64,
        inflight_probe=None,
        adaptive: bool = False,
        window_min_s: float = 0.0,
        target_batch: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine  # repro.query.Engine
        self.window_s = max(0.0, window_s)
        self.max_batch = max_batch
        self.adaptive = adaptive
        self.window_min_s = max(0.0, window_min_s)
        self.target_batch = max(1, min(target_batch, max_batch))
        self._arrivals = ArrivalRateEstimator()
        #: Optional callable reporting how many queries are currently in
        #: flight service-wide; lets the leader stop waiting as soon as
        #: every in-flight query has had the chance to join the group.
        self._inflight_probe = inflight_probe
        self._groups: dict[tuple, _Group] = {}
        self._lock = threading.Lock()
        self.stats = CoalescerStats()
        #: Optional :class:`~repro.shard.ShardPool`; when set, group scans
        #: big enough to clear the fan-out cost model run on worker
        #: processes instead of this thread (service-attached).
        self.shard_pool = None

    def stats_snapshot(self) -> dict:
        """Consistent counter copy taken under the coalescer lock."""
        with self._lock:
            return self.stats.snapshot()

    def current_window_s(self) -> float:
        """The gather window a group leader would use right now."""
        if not self.adaptive:
            return self.window_s
        return self._arrivals.window(
            self.target_batch - 1, self.window_s, self.window_min_s
        )

    # ------------------------------------------------------------------
    # Submission path (runs on client threads)
    # ------------------------------------------------------------------
    def submit(self, request: SharedScanRequest) -> Table:
        """Join (or lead) the shared-scan group for this request's source.

        Blocks until the group executed; returns this request's demuxed,
        exact-rescored result (or re-raises its per-request error).
        """
        key = request.key
        self._arrivals.observe()
        with self._lock:
            group = self._groups.get(key)
            if (
                group is None
                or group.closed
                or len(group.requests) >= self.max_batch
            ):
                group = _Group(key)
                self._groups[key] = group
                is_leader = True
            else:
                is_leader = False
            group.requests.append(request)
        with span("coalesce.wait") as sp:
            if is_leader:
                self._lead(group)
            else:
                group.done.wait()
            sp.set(leader=is_leader, batch=len(group.requests))
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result

    def _lead(self, group: _Group) -> None:
        self._gather(group)
        with self._lock:
            group.closed = True
            if self._groups.get(group.key) is group:
                del self._groups[group.key]
            requests = list(group.requests)
        try:
            self._execute_group(group.key, requests)
        except BaseException as exc:
            for req in requests:
                if req.error is None and req.result is None:
                    req.error = exc
        finally:
            group.done.set()

    def _gather(self, group: _Group) -> None:
        """Hold the group open up to the coalescing window.

        The wait ends early once the group has absorbed every query the
        service currently has in flight (nobody else could join), so an
        uncontended service pays (almost) no coalescing latency while a
        loaded one batches aggressively.  Under ``adaptive`` sizing the
        window itself shrinks with the observed arrival rate.
        """
        window_s = self.current_window_s()
        if window_s <= 0:
            return
        deadline = time.perf_counter() + window_s
        poll = min(window_s / 8, 0.0002)
        while True:
            with self._lock:
                size = len(group.requests)
            if size >= self.max_batch:
                return
            if self._inflight_probe is not None and size >= min(
                self._inflight_probe(), self.max_batch
            ):
                return
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            time.sleep(min(remaining, poll))

    # ------------------------------------------------------------------
    # Shared scan execution (runs on the leader's thread)
    # ------------------------------------------------------------------
    def _execute_group(
        self, key: tuple, requests: list[SharedScanRequest]
    ) -> None:
        from ..algebra.physical_planner import _embed_column

        with self._lock:
            self.stats.groups += 1
            self.stats.coalesced_queries += len(requests)
            self.stats.max_batch = max(self.stats.max_batch, len(requests))

        scan_t0 = time.perf_counter()
        scan_c0 = time.thread_time()
        table_name, column, model_name = key
        ctx = self.engine.context(tag=f"svc/scan/{table_name}.{column}")
        table = ctx.catalog.get(table_name)
        vectors = _embed_column(table, column, model_name, ctx)
        normalized = ctx.normalized_matrix_for(key, vectors)
        n = len(normalized)

        # Deduplicate query vectors: concurrent clients asking the same
        # (hot) question share one scan row — the service-level analogue
        # of the embed-once prefetch.  ``urow_of[i]`` maps request i to
        # its unique scan row.
        uniq_index: dict[bytes, int] = {}
        urow_of: list[int] = []
        uniq_vecs: list[np.ndarray] = []
        for req in requests:
            digest = req.qvec.tobytes()
            urow = uniq_index.get(digest)
            if urow is None:
                urow = len(uniq_vecs)
                uniq_index[digest] = urow
                uniq_vecs.append(req.qvec)
            urow_of.append(urow)
        queries = np.stack(uniq_vecs).astype(np.float32)
        with self._lock:
            self.stats.deduped_queries += len(requests) - len(uniq_vecs)

        # Unique scan rows needing a top-k heap / threshold pool (a row
        # can need both when duplicate vectors carry mixed conditions).
        topk_rows = sorted(
            {
                urow_of[i]
                for i, req in enumerate(requests)
                if isinstance(req.node.condition, TopKCondition)
            }
        )
        heap_pos = {urow: j for j, urow in enumerate(topk_rows)}
        thr_floor: dict[int, float] = {}
        for i, req in enumerate(requests):
            if isinstance(req.node.condition, ThresholdCondition):
                urow = urow_of[i]
                bound = req.node.condition.threshold - PRESCREEN_MARGIN
                thr_floor[urow] = min(thr_floor.get(urow, bound), bound)
        thr_rows = sorted(thr_floor)
        pool_pos = {urow: j for j, urow in enumerate(thr_rows)}
        kpad = 0
        heap = None
        if topk_rows:
            kpad = min(
                n,
                max(
                    req.node.condition.k
                    for req in requests
                    if isinstance(req.node.condition, TopKCondition)
                )
                + TOPK_PRESCREEN_PAD,
            )
            kpad = max(kpad, 1)
            heap = StreamingTopK(len(topk_rows), kpad)
        thresholds = np.asarray(
            [thr_floor[urow] for urow in thr_rows], dtype=np.float32
        )
        pools: list[list[np.ndarray]] = [[] for _ in thr_rows]

        # One blocked pass over the relation.  Each block is one stacked
        # GEMM in (queries, rows) orientation — the relation streams once
        # for the whole group — reduced to per-query block candidates.
        # On a multi-threaded engine the blocks are independent scheduler
        # tasks folded into the heap in input order; on a single-threaded
        # engine the fold runs inline so later blocks can prune against
        # the running heap floor with a vectorized compare instead of a
        # per-query selection (the same superset either way).
        all_topk = len(topk_rows) == len(queries)
        block_rows = self._block_rows(ctx, len(queries))

        # Fan out to the shard-process pool when one is attached and the
        # cost model says the table is big enough to amortize dispatch.
        # The pool returns the same artifacts the in-process pass builds
        # (merged heap + threshold hit pools), so everything downstream —
        # floor guard, exact rescore, demux — is shared between paths,
        # and a pool failure (ShardError) degrades to the in-process scan
        # rather than failing queries.
        shard_res = None
        if self.shard_pool is not None and (heap is not None or thr_rows):
            try:
                shard_res = self.shard_pool.scan_candidates(
                    key,
                    queries,
                    n_rows=n,
                    topk_rows=topk_rows,
                    kpad=max(kpad, 1),
                    thr_rows=thr_rows,
                    thr_floors=thresholds,
                    block_rows=block_rows,
                )
            except ShardError:
                with self._lock:
                    self.stats.shard_fallbacks += 1
                shard_res = None

        starts: list[int] = []
        if shard_res is None:
            starts = list(range(0, n, block_rows))
        with self._lock:
            self.stats.shared_scan_blocks += (
                shard_res.blocks if shard_res is not None else len(starts)
            )
            if shard_res is not None:
                self.stats.sharded_groups += 1

        def scan_block(start: int, floor: np.ndarray | None):
            stop = min(start + block_rows, n)
            scores = queries @ normalized[start:stop].T  # (b, rows)
            by_query = scores if all_topk else scores[topk_rows]
            top = None
            if topk_rows:
                if floor is None:
                    local = top_k_per_row(by_query, min(kpad, stop - start))
                    top = (
                        local.astype(np.int64) + start,
                        np.take_along_axis(by_query, local, axis=1),
                    )
                else:
                    top = _floor_pruned_candidates(by_query, floor, start)
            thr_hits = [
                np.nonzero(scores[row] >= thresholds[j])[0] + start
                for j, row in enumerate(thr_rows)
            ]
            return top, thr_hits

        def fold(top, thr_hits) -> None:
            if heap is not None and top is not None:
                heap.update(*top)
            for j, hits in enumerate(thr_hits):
                if len(hits):
                    pools[j].append(hits)

        if shard_res is not None:
            for j, hits in enumerate(shard_res.thr_hits):
                if len(hits):
                    pools[j].append(hits)
        elif ctx.engine.n_threads > 1:
            partials = ctx.engine.run(
                [lambda s=s: scan_block(s, None) for s in starts]
            )
            for top, thr_hits in partials:
                fold(top, thr_hits)
        else:
            for start in starts:
                floor = None
                if heap is not None and heap.width >= kpad:
                    floor = heap.finalize()[1].min(axis=1)
                fold(*scan_block(start, floor))

        heap_ids = heap_floor = None
        if heap is not None and shard_res is not None:
            # The pool already merged per-shard heaps; its floor includes
            # the store's score error bound, so the demux guard below
            # stays sound for quantized shard stores too.
            heap_ids = shard_res.heap_ids
            heap_floor = shard_res.heap_floor
        elif heap is not None:
            heap_ids, heap_scores = heap.finalize()
            heap_floor = (
                heap_scores.min(axis=1)
                if heap_scores.shape[1]
                else np.full(len(topk_rows), -np.inf, dtype=np.float32)
            )

        # Attribute the shared scan to every member query: the scan ran
        # once on the leader's thread, but each sampled trace receives a
        # completed foreign span describing the batch it rode in.
        scan_wall = time.perf_counter() - scan_t0
        scan_cpu = time.thread_time() - scan_c0
        for req in requests:
            if req.trace is not None:
                req.trace.add_span(
                    "coalesce.scan",
                    wall_s=scan_wall,
                    cpu_s=scan_cpu,
                    batch=len(requests),
                    unique_vectors=len(uniq_vecs),
                    blocks=(
                        shard_res.blocks if shard_res is not None
                        else len(starts)
                    ),
                    rows=n,
                    bytes_scanned=int(n) * int(normalized.shape[1]) * 4,
                    shards=0 if shard_res is None else shard_res.n_shards,
                )
                if shard_res is not None:
                    # One foreign span per shard worker: the member trace
                    # shows where the fanned-out scan actually spent its
                    # time, even though the work ran in other processes.
                    for sid, wall in enumerate(shard_res.shard_walls):
                        req.trace.add_span(
                            "shard.scan",
                            wall_s=wall,
                            cpu_s=wall,
                            shard=sid,
                        )

        # Per-request demux: exact selection from the shared candidates.
        # Duplicate vectors share candidates but each request applies its
        # own condition, score column, and wrappers — and each fails
        # alone: a bad wrapper (e.g. projecting a missing column) must
        # not poison the other queries that happened to share its scan.
        for i, req in enumerate(requests):
            urow = urow_of[i]
            condition = req.node.condition
            demux_t0 = time.perf_counter()
            demux_c0 = time.thread_time()
            candidates = 0
            try:
                if isinstance(condition, ThresholdCondition):
                    j = pool_pos[urow]
                    cand = (
                        np.concatenate(pools[j])
                        if pools[j]
                        else np.empty(0, dtype=np.int64)
                    )
                    candidates = len(cand)
                    ids, scores = exact_threshold_select(
                        normalized, cand, req.qvec, condition.threshold
                    )
                    req.result = self._materialize(table, ids, scores, req)
                else:
                    j = heap_pos[urow]
                    candidates = len(heap_ids[j])
                    ids_scores = self._demux_topk(
                        normalized, heap_ids[j], float(heap_floor[j]), req,
                        condition, n,
                    )
                    req.result = self._materialize(table, *ids_scores, req)
            except BaseException as exc:
                req.error = exc
            if req.trace is not None:
                req.trace.add_span(
                    "rescore",
                    wall_s=time.perf_counter() - demux_t0,
                    cpu_s=time.thread_time() - demux_c0,
                    candidates=candidates,
                    rows=0 if req.result is None else len(req.result),
                )

    def _demux_topk(
        self,
        normalized: np.ndarray,
        candidates: np.ndarray,
        heap_floor: float,
        req: SharedScanRequest,
        condition: TopKCondition,
        n: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k from shared-scan candidates, or serial fallback.

        Completeness guard: every row the heap dropped has approximate
        score <= the heap floor; if the floor sits at least the prescreen
        margin below this query's k-th exact candidate score, no dropped
        row can reach the top-k, so the candidate set is provably
        complete.  Otherwise re-run this one query through the serial
        scan — which is bit-identical by the shared exact contract.
        """
        if len(candidates) < n and len(candidates):
            from ..vector.kernels import stable_dot_scores

            exact = stable_dot_scores(normalized[candidates], req.qvec)
            kth = np.sort(exact)[::-1][min(condition.k, len(exact)) - 1]
            if heap_floor > kth - PRESCREEN_MARGIN:
                with self._lock:
                    self.stats.fallbacks += 1
                result = eselect(
                    normalized, req.qraw, condition, assume_normalized=True
                )
                return result.ids, result.scores
        return exact_topk_select(
            normalized,
            candidates,
            req.qvec,
            condition.k,
            min_similarity=condition.min_similarity,
        )

    def _block_rows(self, ctx, batch: int) -> int:
        """Rows per shared-scan block under the configured buffer budget."""
        from ..config import get_config

        budget = ctx.engine.policy.buffer_budget_bytes
        if budget is None:
            budget = get_config().default_buffer_budget_bytes
        if budget is None:
            budget = DEFAULT_SCAN_BLOCK_BYTES
        return max(1024, budget // max(1, 4 * batch))

    @staticmethod
    def _materialize(
        table: Table,
        ids: np.ndarray,
        scores: np.ndarray,
        req: SharedScanRequest,
    ) -> Table:
        return materialize_selection(
            table, ids, scores, req.node.score_column, req.wrappers
        )


def materialize_selection(
    table: Table,
    ids: np.ndarray,
    scores: np.ndarray,
    score_column: str,
    wrappers: list[LogicalNode],
) -> Table:
    """Mirror the planner's E-selection materialization + plan wrappers.

    Shared by the coalescer's per-request demux and the QoS layer's
    degraded (quantized prescreen-only) execution path, so both produce
    tables shaped exactly like the serial planner's output.
    """
    out = table.take(ids).with_column(
        Column(SchemaField(score_column, DataType.FLOAT32), scores)
    )
    for wrapper in reversed(wrappers):
        if isinstance(wrapper, ProjectNode):
            out = out.select(list(wrapper.names))
        else:
            assert isinstance(wrapper, LimitNode)
            out = out.slice(0, wrapper.n)
    return out
