"""Admission control: bounded in-flight queries with backpressure stats.

The service's first defence under heavy traffic is refusing to start more
work than the machine can progress: at most ``max_inflight`` queries
execute concurrently, and a submission that cannot get a slot within its
timeout is rejected with :class:`~repro.errors.ServiceOverloadError`
rather than queued unboundedly — callers see backpressure instead of
silent latency collapse.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import ServiceError, ServiceOverloadError


@dataclass
class AdmissionStats:
    """Counters describing admission behaviour (read under the lock)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    #: Highest number of concurrently admitted queries observed.
    peak_inflight: int = 0
    #: Total seconds submissions spent waiting for a slot (admitted only).
    queue_wait_seconds: float = 0.0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "peak_inflight": self.peak_inflight,
            "queue_wait_seconds": self.queue_wait_seconds,
        }


@dataclass
class AdmissionController:
    """Bounded-concurrency gate with waiting-time accounting.

    Implemented on a condition variable rather than a bare semaphore so
    admissions can record queue-wait time and peak concurrency under the
    same lock that guards the counter.
    """

    max_inflight: int
    timeout_s: float = 30.0
    stats: AdmissionStats = field(default_factory=AdmissionStats)

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        self._inflight = 0
        self._cond = threading.Condition()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def acquire(self, *, timeout_s: float | None = None) -> None:
        """Wait for an execution slot; raise on backpressure timeout."""
        timeout = self.timeout_s if timeout_s is None else timeout_s
        start = time.perf_counter()
        deadline = start + timeout
        with self._cond:
            self.stats.submitted += 1
            while self._inflight >= self.max_inflight:
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if self._inflight >= self.max_inflight:
                        self.stats.rejected += 1
                        raise ServiceOverloadError(
                            f"no execution slot within {timeout:.3g}s "
                            f"({self._inflight}/{self.max_inflight} in flight)"
                        )
            self._inflight += 1
            self.stats.admitted += 1
            self.stats.peak_inflight = max(
                self.stats.peak_inflight, self._inflight
            )
            self.stats.queue_wait_seconds += time.perf_counter() - start

    def release(self) -> None:
        """Return a slot (called exactly once per successful acquire)."""
        with self._cond:
            if self._inflight <= 0:
                raise ServiceError("release() without a matching acquire()")
            self._inflight -= 1
            self.stats.completed += 1
            self._cond.notify()
