"""Admission control: bounded in-flight queries with backpressure stats.

The service's first defence under heavy traffic is refusing to start more
work than the machine can progress: at most ``max_inflight`` queries
execute concurrently, and a submission that cannot get a slot within its
timeout is rejected with :class:`~repro.errors.ServiceOverloadError`
rather than queued unboundedly — callers see backpressure instead of
silent latency collapse.

The QoS layer adds two per-submission properties:

* **priority** — freed slots go to the highest-priority waiter, not the
  longest-waiting one (FIFO within a priority level), so a tight-deadline
  singleton is never stuck behind a backlog of batch work;
* **deadline** — a waiter whose deadline passes while queued is shed with
  :class:`~repro.errors.DeadlineExceededError` instead of being admitted
  to do work nobody can use anymore.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field

from ..errors import DeadlineExceededError, ServiceError, ServiceOverloadError


@dataclass
class AdmissionStats:
    """Counters describing admission behaviour (read under the lock)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    #: Waiters shed because their deadline passed while queued.
    deadline_shed: int = 0
    #: Highest number of concurrently admitted queries observed.
    peak_inflight: int = 0
    #: Total seconds submissions spent waiting for a slot (admitted only).
    queue_wait_seconds: float = 0.0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "deadline_shed": self.deadline_shed,
            "peak_inflight": self.peak_inflight,
            "queue_wait_seconds": self.queue_wait_seconds,
        }


@dataclass
class AdmissionController:
    """Bounded-concurrency gate with priority, deadlines, and accounting.

    Implemented on a condition variable rather than a bare semaphore so
    admissions can record queue-wait time and peak concurrency under the
    same lock that guards the counter — and so freed slots can be handed
    to the *highest-priority* waiter (a semaphore wakes an arbitrary
    one).  Waiters park in a heap ordered by (priority desc, arrival
    order asc); every release notifies all waiters and each checks
    whether it is now first in line.
    """

    max_inflight: int
    timeout_s: float = 30.0
    stats: AdmissionStats = field(default_factory=AdmissionStats)

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        self._inflight = 0
        self._cond = threading.Condition()
        #: Heap of ``[-priority, seq, alive]`` waiter entries; ``seq`` is
        #: unique so comparison never reaches the ``alive`` flag.
        self._waiters: list[list] = []
        self._seq = 0

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def stats_snapshot(self) -> dict:
        """Consistent counter copy taken under the admission lock.

        ``AdmissionStats`` documents "read under the lock"; this is the
        method reporting paths must use — ``controller.stats.snapshot()``
        from another thread races with in-flight admissions.
        """
        with self._cond:
            snap = self.stats.snapshot()
            snap["inflight"] = self._inflight
            snap["waiting"] = sum(1 for w in self._waiters if w[2])
            return snap

    def _prune(self) -> None:
        """Drop abandoned (timed-out / shed) entries from the heap top."""
        while self._waiters and not self._waiters[0][2]:
            heapq.heappop(self._waiters)

    def _admit(self, start: float) -> None:
        self._inflight += 1
        self.stats.admitted += 1
        self.stats.peak_inflight = max(self.stats.peak_inflight, self._inflight)
        self.stats.queue_wait_seconds += time.perf_counter() - start

    def acquire(
        self,
        *,
        timeout_s: float | None = None,
        priority: int = 0,
        deadline: float | None = None,
    ) -> None:
        """Wait for an execution slot; raise on backpressure or deadline.

        Args:
            timeout_s: backpressure bound — how long to wait for a slot
                before rejecting with ``ServiceOverloadError`` (defaults
                to the controller's ``timeout_s``).
            priority: larger values are admitted first among waiters.
            deadline: absolute ``time.perf_counter()`` deadline; if it
                passes while queued the waiter is shed with
                ``DeadlineExceededError`` (a deadline already expired on
                entry sheds immediately).
        """
        timeout = self.timeout_s if timeout_s is None else timeout_s
        start = time.perf_counter()
        give_up = start + timeout
        with self._cond:
            self.stats.submitted += 1
            if deadline is not None and start >= deadline:
                self.stats.deadline_shed += 1
                raise DeadlineExceededError(
                    "deadline already expired at admission"
                )
            self._prune()
            if self._inflight < self.max_inflight and not self._waiters:
                self._admit(start)
                return
            self._seq += 1
            entry = [-priority, self._seq, True]
            heapq.heappush(self._waiters, entry)
            while True:
                self._prune()
                if (
                    self._inflight < self.max_inflight
                    and self._waiters
                    and self._waiters[0] is entry
                ):
                    heapq.heappop(self._waiters)
                    self._admit(start)
                    self._cond.notify_all()  # let the next waiter re-check
                    return
                now = time.perf_counter()
                limit = give_up if deadline is None else min(give_up, deadline)
                if now >= limit:
                    entry[2] = False
                    if deadline is not None and now >= deadline:
                        self.stats.deadline_shed += 1
                        raise DeadlineExceededError(
                            f"deadline passed after {now - start:.3g}s "
                            "queued for admission"
                        )
                    self.stats.rejected += 1
                    raise ServiceOverloadError(
                        f"no execution slot within {timeout:.3g}s "
                        f"({self._inflight}/{self.max_inflight} in flight)"
                    )
                self._cond.wait(limit - now)

    def release(self) -> None:
        """Return a slot (called exactly once per successful acquire)."""
        with self._cond:
            if self._inflight <= 0:
                raise ServiceError("release() without a matching acquire()")
            self._inflight -= 1
            self.stats.completed += 1
            self._cond.notify_all()

    def wait_idle(self, timeout_s: float | None = None) -> bool:
        """Block until no queries are in flight (the drain primitive).

        Returns ``True`` when idle, ``False`` on timeout.  Used by
        :meth:`QueryService.shutdown` to drain gracefully: the service
        stops admitting first, then waits here for in-flight work.
        """
        deadline = (
            None if timeout_s is None else time.perf_counter() + timeout_s
        )
        with self._cond:
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True
