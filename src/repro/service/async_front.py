"""Asyncio submission front: thousands of idle clients, bounded execution.

:class:`QueryService` executes on its callers' threads, so holding ten
thousand connected-but-mostly-idle clients would cost ten thousand OS
threads.  :class:`AsyncQueryService` decouples *connections* from
*execution*: any number of coroutines ``await submit(...)`` at the cost
of a heap entry each, while a small pool of dispatcher threads (sized by
``REPRO_QOS_WORKERS``, defaulting to the admission bound) drains the
queue into the blocking service.

The queue is deadline- and priority-aware:

* dispatch order is highest priority first, FIFO within a level (the
  same discipline the admission controller applies to its waiters);
* an entry whose deadline expires while still queued is shed with
  :class:`~repro.errors.DeadlineExceededError` without ever touching the
  service — the front's analogue of admission-queue shedding;
* the remaining QoS terms (residual deadline, priority, recall floor)
  are forwarded to :meth:`QueryService.submit_qos`, so the service's
  shed/degrade machinery sees the time actually left, not the client's
  original budget.

Results come back as :class:`~repro.service.qos.QueryResponse`, resolved
onto the submitting coroutine's event loop via
``loop.call_soon_threadsafe`` — the only thread-to-loop handoff asyncio
sanctions.
"""

from __future__ import annotations

import asyncio
import heapq
import threading
import time
from dataclasses import dataclass

from ..config import get_config
from ..errors import DeadlineExceededError, ServiceError
from .qos import DEFAULT_PRIORITY, QueryResponse
from .service import QueryService


@dataclass
class AsyncFrontStats:
    """Counters for the async front's queue (read under its lock)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Entries shed because their deadline expired while queued here.
    shed_expired: int = 0
    #: Entries rejected because the front closed without draining.
    rejected_on_close: int = 0
    #: Highest queue depth observed.
    queued_peak: int = 0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed_expired": self.shed_expired,
            "rejected_on_close": self.rejected_on_close,
            "queued_peak": self.queued_peak,
        }


class _Pending:
    """One queued submission: QoS terms plus the future to resolve."""

    __slots__ = (
        "query",
        "priority",
        "deadline",
        "min_recall",
        "tag",
        "timeout_s",
        "explain_analyze",
        "future",
        "loop",
    )

    def __init__(
        self,
        query,
        priority,
        deadline,
        min_recall,
        tag,
        timeout_s,
        explain_analyze,
        future,
        loop,
    ) -> None:
        self.query = query
        self.priority = priority
        self.deadline = deadline
        self.min_recall = min_recall
        self.tag = tag
        self.timeout_s = timeout_s
        self.explain_analyze = explain_analyze
        self.future = future
        self.loop = loop


def _resolve(pending: _Pending, result=None, error: BaseException | None = None):
    """Hand a worker-thread outcome back to the submitting event loop."""

    def _set() -> None:
        if pending.future.cancelled():
            return
        if error is not None:
            pending.future.set_exception(error)
        else:
            pending.future.set_result(result)

    try:
        pending.loop.call_soon_threadsafe(_set)
    except RuntimeError:
        pass  # the submitting loop already shut down; nobody is waiting


class AsyncQueryService:
    """Async submission front over a (blocking) :class:`QueryService`.

    Usage::

        async with AsyncQueryService(service) as front:
            response = await front.submit(query, deadline_s=0.1, priority=5)

    The front does not own the service: closing the front drains or
    rejects *queued* submissions but leaves the service running (call
    :meth:`QueryService.shutdown` separately).

    Args:
        service: the blocking service to dispatch into.
        workers: dispatcher thread count — the front's concurrency
            toward the service.  Defaults to ``config.qos_workers``,
            falling back to the service's admission bound (more workers
            than slots would only queue inside admission instead).
    """

    def __init__(self, service: QueryService, *, workers: int | None = None) -> None:
        config = get_config()
        if workers is None:
            workers = config.qos_workers
        if workers is None:
            workers = service.admission.max_inflight
        self.service = service
        self.workers = max(1, int(workers))
        self.stats = AsyncFrontStats()
        self._heap: list[list] = []
        self._seq = 0
        self._busy = 0
        self._cond = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncQueryService":
        """Spawn the dispatcher threads (idempotent)."""
        with self._cond:
            if self._closed:
                raise ServiceError("async front is closed")
            if self._threads:
                return self
            self._threads = [
                threading.Thread(
                    target=self._worker, name=f"qos-front-{i}", daemon=True
                )
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    async def close(self, *, drain: bool = True) -> None:
        """Stop the front: drain queued work, or reject it.

        With ``drain=True`` waits (off-loop, so the event loop stays
        responsive) until the queue is empty and every dispatcher is
        idle; with ``drain=False`` every still-queued submission fails
        with :class:`~repro.errors.ServiceError`.  In-flight dispatches
        finish either way — accepted work is never abandoned mid-query.
        """
        with self._cond:
            self._closed = True
            if not drain:
                while self._heap:
                    entry = heapq.heappop(self._heap)
                    pending = entry[2]
                    self.stats.rejected_on_close += 1
                    _resolve(
                        pending,
                        error=ServiceError("async front closed before dispatch"),
                    )
            self._cond.notify_all()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._join)

    def _join(self) -> None:
        with self._cond:
            while self._heap or self._busy:
                self._cond.wait()
        for thread in self._threads:
            thread.join()

    async def __aenter__(self) -> "AsyncQueryService":
        return self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Submission (coroutine side)
    # ------------------------------------------------------------------
    async def submit(
        self,
        query,
        *,
        deadline_s: float | None = None,
        priority: int = DEFAULT_PRIORITY,
        min_recall: float | None = None,
        tag: str = "async/anon",
        timeout_s: float | None = None,
        explain_analyze: bool = False,
    ) -> QueryResponse:
        """Queue a query and await its :class:`QueryResponse`.

        The deadline clock starts *now* — time spent queued in the front
        counts against it, and only the residual budget is forwarded to
        the service at dispatch.  ``explain_analyze=True`` force-traces
        the dispatched query and attaches the rendered span tree to
        ``response.explain``.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        deadline = (
            None
            if deadline_s is None
            else time.perf_counter() + float(deadline_s)
        )
        pending = _Pending(
            query,
            priority,
            deadline,
            min_recall,
            tag,
            timeout_s,
            explain_analyze,
            future,
            loop,
        )
        with self._cond:
            if self._closed:
                raise ServiceError("async front is closed")
            if not self._threads:
                raise ServiceError(
                    "async front not started (use `async with` or .start())"
                )
            self._seq += 1
            self.stats.submitted += 1
            heapq.heappush(self._heap, [-priority, self._seq, pending])
            self.stats.queued_peak = max(self.stats.queued_peak, len(self._heap))
            self._cond.notify()
        return await future

    @property
    def queued(self) -> int:
        with self._cond:
            return len(self._heap)

    # ------------------------------------------------------------------
    # Dispatch (worker-thread side)
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if not self._heap:
                    self._cond.notify_all()  # wake close()'s drain wait
                    return
                pending = heapq.heappop(self._heap)[2]
                self._busy += 1
            try:
                self._dispatch(pending)
            finally:
                with self._cond:
                    self._busy -= 1
                    self._cond.notify_all()

    def _dispatch(self, pending: _Pending) -> None:
        now = time.perf_counter()
        if pending.deadline is not None and now >= pending.deadline:
            with self._cond:
                self.stats.shed_expired += 1
            _resolve(
                pending,
                error=DeadlineExceededError(
                    "deadline expired while queued in the async front"
                ),
            )
            return
        remaining = (
            None if pending.deadline is None else pending.deadline - now
        )
        try:
            response = self.service.submit_qos(
                pending.query,
                deadline_s=remaining,
                priority=pending.priority,
                min_recall=pending.min_recall,
                tag=pending.tag,
                timeout_s=pending.timeout_s,
                explain_analyze=pending.explain_analyze,
            )
        except (KeyboardInterrupt, SystemExit) as exc:
            # The caller's future still resolves (a clean service error),
            # but the interrupt itself propagates and takes the dispatch
            # worker down — it belongs to the interpreter, not the query.
            with self._cond:
                self.stats.failed += 1
            _resolve(pending, error=ServiceError("execution interrupted"))
            raise exc
        except Exception as exc:
            with self._cond:
                self.stats.failed += 1
            _resolve(pending, error=exc)
            return
        with self._cond:
            self.stats.completed += 1
        _resolve(pending, result=response)
