"""Plan cache: repeated query *shapes* skip the optimizer.

Service traffic is shape-repetitive — millions of users issue the same
template ("top-k over corpus.embedding under model m") with different
query payloads.  The cache therefore keys on a **parameterized
fingerprint**: the logical plan with every E-selection query payload
replaced by a positional placeholder.  On a miss the optimizer runs once
on the placeholder plan (rewrite rules are structural and never inspect
query payloads); on a hit the cached optimized template is re-instantiated
by substituting the new payloads — identical to optimizing the concrete
plan directly, without paying the fixpoint rewrite walk.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from ..algebra.logical import ESelectNode, LogicalNode
from ..algebra.optimizer import Optimizer
from ..obs.trace import span
from ..relational.catalog import Catalog


class PlanParam:
    """Placeholder for a volatile query payload inside a plan template."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:  # renders into the fingerprint string
        return f"?{self.index}"


def parameterize(plan: LogicalNode) -> tuple[LogicalNode, list]:
    """Split a plan into (template with placeholders, payload list).

    Placeholders are numbered in pre-order traversal, so structurally
    identical plans always produce the same template and an aligned
    payload order.
    """
    params: list = []

    def rebuild(node: LogicalNode) -> LogicalNode:
        if isinstance(node, ESelectNode) and not isinstance(
            node.query, PlanParam
        ):
            params.append(node.query)
            node = replace(node, query=PlanParam(len(params) - 1))
        children = node.children()
        if children:
            node = node.with_children([rebuild(c) for c in children])
        return node

    return rebuild(plan), params


def substitute(template: LogicalNode, params: list) -> LogicalNode:
    """Re-instantiate a template by filling placeholders from ``params``."""

    def rebuild(node: LogicalNode) -> LogicalNode:
        if isinstance(node, ESelectNode) and isinstance(node.query, PlanParam):
            node = replace(node, query=params[node.query.index])
        children = node.children()
        if children:
            node = node.with_children([rebuild(c) for c in children])
        return node

    return rebuild(template)


def fingerprint(plan: LogicalNode) -> tuple[str, list]:
    """Structural fingerprint string plus the extracted volatile payloads."""
    template, params = parameterize(plan)
    return template.explain(), params


@dataclass
class PlanCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class PlanCache:
    """LRU fingerprint -> optimized plan-template cache (thread-safe)."""

    capacity: int = 256
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)

    def __post_init__(self) -> None:
        self._entries: OrderedDict[str, LogicalNode] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def optimize(
        self, plan: LogicalNode, *, catalog: Catalog | None = None
    ) -> tuple[LogicalNode, str, list]:
        """Optimized plan for ``plan``, via the template cache.

        Returns ``(optimized, fingerprint_key, payloads)`` — the key and
        payloads double as the semantic result cache's lookup key parts.
        """
        with span("plan.cache") as sp:
            template, params = parameterize(plan)
            key = template.explain()
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
            sp.set(hit=cached is not None, params=len(params))
            if cached is None:
                cached = Optimizer(catalog=catalog).optimize(template)
                with self._lock:
                    self.stats.misses += 1
                    if self.capacity > 0:
                        self._entries[key] = cached
                        self._entries.move_to_end(key)
                        while len(self._entries) > self.capacity:
                            self._entries.popitem(last=False)
                            self.stats.evictions += 1
            return substitute(cached, params), key, params

    def stats_snapshot(self) -> dict:
        """Consistent counter copy taken under the cache lock."""
        with self._lock:
            snap = self.stats.snapshot()
            snap["entries"] = len(self._entries)
            return snap
