"""Semantic result cache: exact-key and near-duplicate query-vector hits.

Caches materialized per-query results keyed by (plan-shape fingerprint,
catalog table versions, query payload signature).  Two hit modes:

* **exact** — same plan shape over the same table versions with a bitwise-
  equal query payload: the cached table is returned as-is, so repeated
  queries cost nothing and stay bit-identical to serial execution;
* **near-duplicate** (opt-in) — a *different* query vector whose cosine
  similarity to a cached one clears ``near_dup_threshold``: semantically
  the same question, served approximately.  Off by default because it
  trades the service's exactness guarantee for hit rate.

Entries are invalidated by catalog version (any re-registration of a
referenced table changes the key — the same fingerprint-invalidation
contract as ``Engine._quant_stores``), expire after a TTL, and are evicted
LRU beyond capacity.

With ``tinylfu=True`` the cache adds **cost-aware TinyLFU admission**: a
:class:`~repro.service.qos.FrequencySketch` counts recent lookups per
key, and a new entry only displaces the LRU victim when its estimated
``frequency * cost`` (cost = the seconds it took to compute, passed by
the service at store time) exceeds the victim's.  One-off scans can no
longer wash a hot working set out of the cache.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..algebra.logical import LogicalNode, ScanNode, walk
from ..relational.catalog import Catalog
from ..relational.table import Table
from ..vector.norms import normalize_vector
from .qos import FrequencySketch


def table_versions(plan: LogicalNode, catalog: Catalog) -> tuple:
    """(name, version) for every base table a plan reads, sorted."""
    names = sorted(
        {n.table_name for n in walk(plan) if isinstance(n, ScanNode)}
    )
    return tuple((name, catalog.version(name)) for name in names)


def _param_signature(param) -> tuple:
    """Exact, hashable signature of one query payload."""
    if isinstance(param, np.ndarray):
        digest = hashlib.sha1(np.ascontiguousarray(param).tobytes()).hexdigest()
        return ("nd", param.shape, param.dtype.str, digest)
    return ("py", repr(param))


def params_signature(params: list) -> tuple:
    return tuple(_param_signature(p) for p in params)


@dataclass
class _Entry:
    group: tuple
    result: Table
    expires_at: float
    #: Unit-normalized query vector, kept only for single-vector payloads
    #: so near-duplicate lookups can compare by cosine.
    qnorm: np.ndarray | None
    #: What this entry saves per hit (seconds to recompute); weighs the
    #: TinyLFU admission duel.
    cost: float = 1.0


@dataclass
class ResultCacheStats:
    exact_hits: int = 0
    near_hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: New entries turned away by TinyLFU admission (the LRU victim was
    #: worth more than the newcomer).
    admission_rejects: int = 0

    def snapshot(self) -> dict:
        return {
            "exact_hits": self.exact_hits,
            "near_hits": self.near_hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "admission_rejects": self.admission_rejects,
        }


@dataclass
class SemanticResultCache:
    """TTL + LRU result cache with optional cosine near-duplicate hits
    and optional TinyLFU cost-aware admission (``tinylfu=True``)."""

    capacity: int = 512
    ttl_s: float = 300.0
    near_dup_threshold: float | None = None
    tinylfu: bool = False
    stats: ResultCacheStats = field(default_factory=ResultCacheStats)

    def __post_init__(self) -> None:
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._groups: dict[tuple, list] = {}
        self._sketch = FrequencySketch() if self.tinylfu else None
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_snapshot(self) -> dict:
        """Consistent counter copy taken under the cache lock."""
        with self._lock:
            snap = self.stats.snapshot()
            snap["entries"] = len(self._entries)
            return snap

    # ------------------------------------------------------------------
    # Internals (called with the lock held)
    # ------------------------------------------------------------------
    def _remove(self, key: tuple) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        members = self._groups.get(entry.group)
        if members is not None:
            members.remove(key)
            if not members:
                del self._groups[entry.group]

    def _live(self, key: tuple, now: float) -> _Entry | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if now >= entry.expires_at:
            self.stats.expirations += 1
            self._remove(key)
            return None
        return entry

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def lookup(
        self, fingerprint: str, versions: tuple, params: list
    ) -> Table | None:
        """Cached result for this (shape, data-version, payload) query."""
        now = time.monotonic()
        group = (fingerprint, versions)
        key = (*group, params_signature(params))
        if self._sketch is not None:
            # Count the *demand* for this key whether or not it hits, so
            # admission knows what the workload keeps asking for.
            self._sketch.record(FrequencySketch.key_hash(key))
        with self._lock:
            entry = self._live(key, now)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.exact_hits += 1
                return entry.result
            if self.near_dup_threshold is not None and len(params) == 1:
                hit = self._near_lookup(group, params[0], now)
                if hit is not None:
                    return hit
            self.stats.misses += 1
            return None

    def _near_lookup(self, group: tuple, param, now: float) -> Table | None:
        if not (isinstance(param, np.ndarray) and param.ndim == 1):
            return None
        qnorm = normalize_vector(param)
        best_key, best_sim = None, -2.0
        for key in list(self._groups.get(group, ())):
            entry = self._live(key, now)
            if entry is None or entry.qnorm is None:
                continue
            sim = float(entry.qnorm @ qnorm)
            if sim > best_sim:
                best_key, best_sim = key, sim
        if best_key is not None and best_sim >= self.near_dup_threshold:
            self._entries.move_to_end(best_key)
            self.stats.near_hits += 1
            return self._entries[best_key].result
        return None

    def store(
        self,
        fingerprint: str,
        versions: tuple,
        params: list,
        result: Table,
        *,
        cost: float = 1.0,
    ) -> None:
        """Insert a computed result (``cost``: seconds it took to compute).

        Under TinyLFU admission an insert that would evict may instead be
        rejected: the new entry is admitted only if its estimated
        ``frequency * cost`` beats the LRU victim's, so the cache keeps
        whichever entry saves more expected work.
        """
        if self.capacity <= 0:
            return
        group = (fingerprint, versions)
        key = (*group, params_signature(params))
        qnorm = None
        if len(params) == 1 and isinstance(params[0], np.ndarray):
            if params[0].ndim == 1:
                qnorm = normalize_vector(params[0])
        with self._lock:
            self._remove(key)  # refresh TTL/LRU position on re-store
            self._entries[key] = _Entry(
                group,
                result,
                time.monotonic() + self.ttl_s,
                qnorm,
                cost=max(cost, 1e-9),
            )
            self._groups.setdefault(group, []).append(key)
            while len(self._entries) > self.capacity:
                victim_key = next(iter(self._entries))
                if self._sketch is not None and victim_key != key:
                    new_worth = self._sketch.estimate(
                        FrequencySketch.key_hash(key)
                    ) * self._entries[key].cost
                    victim_worth = self._sketch.estimate(
                        FrequencySketch.key_hash(victim_key)
                    ) * self._entries[victim_key].cost
                    if new_worth < victim_worth:
                        self._remove(key)
                        self.stats.admission_rejects += 1
                        break
                self._remove(victim_key)
                self.stats.evictions += 1

    def invalidate_table(self, name: str) -> int:
        """Drop every entry whose key references table ``name``.

        Version keys already make stale entries unreachable; this frees
        their memory eagerly (e.g. after a bulk re-registration).
        """
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if any(item[0] == name for item in entry.group[1])
            ]
            for key in doomed:
                self._remove(key)
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._groups.clear()
