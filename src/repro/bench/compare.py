"""Bench-report regression comparison: diff two sets of ``BENCH_*.json``.

``python -m repro.bench --compare BASELINE_DIR`` loads every figure
report in the baseline directory, pairs it with the same figure in the
current directory, and compares the latency entries keyed by
``(figure, row_label, column)`` on p50.  A current p50 more than
``threshold`` percent *above* the baseline is a regression; the CLI
exits non-zero if any is found, which is what lets CI finally accumulate
a perf trajectory out of reports that were previously write-only.

Guardrails that keep the comparison honest:

* reports whose ``smoke`` config flags differ are skipped entirely —
  smoke-scale numbers say nothing about full-scale ones;
* reports measured at different parallelism (``threads`` or
  ``shard_procs``) are skipped — a config change is not a perf change;
* entries whose baseline p50 is under ``min_seconds`` are skipped — at
  sub-millisecond scale, timer and scheduler noise swamps any signal;
* a figure present on only one side is reported but never a failure —
  benchmarks come and go across PRs.

The comparison itself is pure (dicts in, dict out), so tests can feed it
synthetic reports and CI can archive its JSON output as an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Default regression threshold: current p50 > baseline p50 * 1.2 fails.
DEFAULT_THRESHOLD_PCT = 20.0
#: Baseline p50s below this are timer noise, not a comparison basis.
DEFAULT_MIN_SECONDS = 0.0005


def load_reports(directory: str | Path) -> dict[str, dict]:
    """``figure -> report`` for every ``BENCH_*.json`` in ``directory``."""
    reports = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        figure = report.get("figure") or path.stem.removeprefix("BENCH_")
        reports[figure] = report
    return reports


def _latency_index(report: dict) -> dict[tuple, dict]:
    """``(row_label, column) -> percentiles`` from a report's latency list."""
    index = {}
    for entry in report.get("latency", ()):
        key = (str(entry.get("row_label")), str(entry.get("column")))
        percentiles = entry.get("percentiles") or {}
        if percentiles.get("p50") is not None:
            index[key] = percentiles
    return index


def _is_smoke(report: dict) -> bool:
    return bool((report.get("config") or {}).get("smoke"))


def _parallelism(report: dict) -> tuple[int, int]:
    """``(threads, shard_procs)`` a report was measured at.

    Reports written before shard support lack ``shard_procs``; they were
    necessarily single-process, so missing normalizes to 0 rather than
    tripping a mismatch against an explicit-zero current report.
    """
    config = report.get("config") or {}
    return (int(config.get("threads") or 0), int(config.get("shard_procs") or 0))


def compare_reports(
    baseline: dict[str, dict],
    current: dict[str, dict],
    *,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> dict:
    """Compare two ``figure -> report`` maps; returns the comparison dict.

    ``ok`` is false iff at least one compared entry regressed beyond
    ``threshold_pct``.  Improvements are listed symmetrically (same
    threshold, other direction) but never fail the comparison.
    """
    entries = []
    regressions = []
    improvements = []
    skipped = []
    for figure in sorted(set(baseline) | set(current)):
        base = baseline.get(figure)
        cur = current.get(figure)
        if base is None or cur is None:
            skipped.append(
                {
                    "figure": figure,
                    "reason": (
                        "missing_in_current" if cur is None else "missing_in_baseline"
                    ),
                }
            )
            continue
        if _is_smoke(base) != _is_smoke(cur):
            skipped.append({"figure": figure, "reason": "smoke_mismatch"})
            continue
        if _parallelism(base) != _parallelism(cur):
            # Different thread or shard-process counts measure different
            # machines-worth of parallelism; diffing them would call a
            # config change a perf change.
            skipped.append({"figure": figure, "reason": "parallelism_mismatch"})
            continue
        base_idx = _latency_index(base)
        cur_idx = _latency_index(cur)
        for key in sorted(set(base_idx) & set(cur_idx)):
            base_p50 = float(base_idx[key]["p50"])
            cur_p50 = float(cur_idx[key]["p50"])
            if base_p50 < min_seconds:
                continue
            delta_pct = (cur_p50 / base_p50 - 1.0) * 100.0
            entry = {
                "figure": figure,
                "row_label": key[0],
                "column": key[1],
                "baseline_p50_s": base_p50,
                "current_p50_s": cur_p50,
                "delta_pct": round(delta_pct, 3),
            }
            entries.append(entry)
            if delta_pct > threshold_pct:
                regressions.append(entry)
            elif delta_pct < -threshold_pct:
                improvements.append(entry)
    return {
        "threshold_pct": threshold_pct,
        "min_seconds": min_seconds,
        "compared": len(entries),
        "entries": entries,
        "regressions": regressions,
        "improvements": improvements,
        "skipped": skipped,
        "ok": not regressions,
    }


def compare_dirs(
    baseline_dir: str | Path,
    current_dir: str | Path,
    *,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> dict:
    """Directory-level convenience around :func:`compare_reports`."""
    result = compare_reports(
        load_reports(baseline_dir),
        load_reports(current_dir),
        threshold_pct=threshold_pct,
        min_seconds=min_seconds,
    )
    result["baseline_dir"] = str(baseline_dir)
    result["current_dir"] = str(current_dir)
    return result


def render_comparison(result: dict) -> str:
    """Human-readable summary of a comparison dict."""
    lines = [
        f"bench compare: {result['compared']} entries, threshold "
        f"{result['threshold_pct']:g}% "
        f"({result.get('baseline_dir', '?')} -> {result.get('current_dir', '?')})"
    ]
    for kind in ("regressions", "improvements"):
        for entry in result[kind]:
            sign = "REGRESSION" if kind == "regressions" else "improved"
            lines.append(
                f"  {sign:<10} {entry['figure']} [{entry['row_label']} / "
                f"{entry['column']}]: p50 {entry['baseline_p50_s'] * 1e3:.3f} ms "
                f"-> {entry['current_p50_s'] * 1e3:.3f} ms "
                f"({entry['delta_pct']:+.1f}%)"
            )
    for skip in result["skipped"]:
        lines.append(f"  skipped    {skip['figure']}: {skip['reason']}")
    if not result["regressions"]:
        lines.append("  no regressions beyond threshold")
    return "\n".join(lines)
