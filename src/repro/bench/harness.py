"""Benchmark harness: timing, series collection, paper-style tables.

Each figure benchmark produces a series of (x, series-name, time) rows; the
harness renders them as aligned text tables mirroring what the paper plots,
and persists them under ``bench_results/`` so EXPERIMENTS.md can quote
measured numbers.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Where figure reports are written (relative to the repo root / CWD).
RESULTS_DIR = Path("bench_results")


def git_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def _config_snapshot() -> dict:
    """Engine knobs in effect for this benchmark process."""
    from ..config import get_config

    config = get_config()
    return {
        "seed": config.seed,
        "threads": config.default_threads,
        "morsel_rows": config.default_morsel_rows,
        "buffer_budget_bytes": config.default_buffer_budget_bytes,
        "precision": config.default_precision,
        "rerank_multiple": config.default_rerank_multiple,
        "work_stealing": config.work_stealing,
        "smoke": os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0"),
    }


def _jsonable(value):
    """Coerce NumPy scalars and other non-JSON values to plain Python."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def results_dir() -> Path:
    """Report directory; smoke runs divert to a subdirectory so their toy
    numbers never overwrite full-scale results."""
    if os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0"):
        return RESULTS_DIR / "smoke"
    return RESULTS_DIR


def time_call(fn, *args, repeat: int = 1, **kwargs) -> tuple[object, float]:
    """Run ``fn`` ``repeat`` times; return (last result, best seconds)."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def median_time(fn, *args, repeat: int = 3, **kwargs) -> tuple[object, float]:
    """Run ``fn`` ``repeat`` times; return (last result, median seconds)."""
    times = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        times.append(time.perf_counter() - start)
    return result, statistics.median(times)


@dataclass
class FigureReport:
    """Accumulates rows for one figure/table and renders them."""

    figure: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)

        table = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in table))
            if table
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.figure}: {self.title} =="]
        header = "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for r in table:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save(self, directory: Path | None = None) -> Path:
        directory = results_dir() if directory is None else directory
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.figure.lower().replace(' ', '_')}.txt"
        path.write_text(self.render() + "\n", encoding="utf-8")
        return path

    def to_json(self) -> dict:
        """Machine-readable report: rows plus run provenance.

        Wall times live in the rows (whatever time columns the scenario
        measures); ``config`` and ``git_rev`` pin down the engine knobs
        and code revision they were measured at, so the perf trajectory
        is comparable across PRs.
        """
        return {
            "figure": self.figure,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [_jsonable(row) for row in self.rows],
            "notes": list(self.notes),
            "config": _config_snapshot(),
            "git_rev": git_revision(),
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }

    def save_json(self, directory: Path | None = None) -> Path:
        """Persist the machine-readable ``BENCH_<figure>.json`` twin."""
        directory = results_dir() if directory is None else directory
        directory.mkdir(parents=True, exist_ok=True)
        name = self.figure.lower().replace(" ", "_")
        path = directory / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    def emit(self) -> None:
        """Print and persist (the standard end-of-benchmark call)."""
        text = self.render()
        print("\n" + text)
        self.save()
        self.save_json()


def speedup(baseline_s: float, optimized_s: float) -> float:
    """baseline / optimized (>1 means the optimization helped)."""
    if optimized_s <= 0:
        return float("inf")
    return baseline_s / optimized_s
