"""Benchmark harness: timing, series collection, paper-style tables.

Each figure benchmark produces a series of (x, series-name, time) rows; the
harness renders them as aligned text tables mirroring what the paper plots,
and persists them under ``bench_results/`` so EXPERIMENTS.md can quote
measured numbers.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Where figure reports are written (relative to the repo root / CWD).
RESULTS_DIR = Path("bench_results")


def git_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def _config_snapshot() -> dict:
    """Engine knobs in effect for this benchmark process."""
    from ..config import get_config

    config = get_config()
    return {
        "seed": config.seed,
        "threads": config.default_threads,
        "morsel_rows": config.default_morsel_rows,
        "buffer_budget_bytes": config.default_buffer_budget_bytes,
        "precision": config.default_precision,
        "rerank_multiple": config.default_rerank_multiple,
        "work_stealing": config.work_stealing,
        "shard_procs": config.shard_procs,
        # Total OS processes doing scan work: the front door plus any
        # shard workers.  Recorded so --compare can refuse to diff runs
        # measured at different parallelism silently.
        "processes": 1 + config.shard_procs,
        "smoke": os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0"),
    }


def _jsonable(value):
    """Coerce NumPy scalars and other non-JSON values to plain Python."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def results_dir() -> Path:
    """Report directory; smoke runs divert to a subdirectory so their toy
    numbers never overwrite full-scale results."""
    if os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0"):
        return RESULTS_DIR / "smoke"
    return RESULTS_DIR


def latency_percentiles(samples) -> dict:
    """p50/p95/p99 (linear-interpolated) plus sample count of ``samples``.

    Returns an empty dict for an empty input — callers can splat the
    result into reports unconditionally.
    """
    values = sorted(float(s) for s in samples)
    if not values:
        return {}

    def pct(p: float) -> float:
        if len(values) == 1:
            return values[0]
        rank = (len(values) - 1) * (p / 100.0)
        lo, hi = math.floor(rank), math.ceil(rank)
        return values[lo] + (values[hi] - values[lo]) * (rank - lo)

    return {"p50": pct(50), "p95": pct(95), "p99": pct(99), "n": len(values)}


class Seconds(float):
    """A seconds value that remembers the raw per-repeat samples.

    Behaves exactly like ``float`` in arithmetic and formatting, so every
    existing report column keeps working — but reports can additionally
    derive latency percentiles from ``samples``, which is how *every*
    scenario timed through :func:`time_call` / :func:`median_time` gains
    p50/p95/p99 in its text and JSON outputs without per-scenario code.
    """

    samples: tuple

    def __new__(cls, value: float, samples=()) -> "Seconds":
        obj = super().__new__(cls, value)
        obj.samples = tuple(float(s) for s in samples)
        return obj

    @property
    def percentiles(self) -> dict:
        return latency_percentiles(self.samples)


def time_call(fn, *args, repeat: int = 1, **kwargs) -> tuple[object, Seconds]:
    """Run ``fn`` ``repeat`` times; return (last result, best seconds)."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    times = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        times.append(time.perf_counter() - start)
    return result, Seconds(min(times), times)


def median_time(fn, *args, repeat: int = 3, **kwargs) -> tuple[object, Seconds]:
    """Run ``fn`` ``repeat`` times; return (last result, median seconds)."""
    times = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        times.append(time.perf_counter() - start)
    return result, Seconds(statistics.median(times), times)


@dataclass
class FigureReport:
    """Accumulates rows for one figure/table and renders them."""

    figure: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)

        table = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in table))
            if table
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.figure}: {self.title} =="]
        header = "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for r in table:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
        for entry in self._latency_entries():
            p = entry["percentiles"]
            lines.append(
                f"latency [{entry['row_label']}] {entry['column']}: "
                f"p50={p['p50']:.4g}s p95={p['p95']:.4g}s "
                f"p99={p['p99']:.4g}s (n={p['n']})"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def _latency_entries(self) -> list[dict]:
        """Percentile records for every multi-sample timing cell."""
        entries = []
        for row_idx, row in enumerate(self.rows):
            for col_idx, value in enumerate(row):
                if isinstance(value, Seconds) and len(value.samples) > 1:
                    entries.append(
                        {
                            "row": row_idx,
                            "row_label": str(row[0]),
                            "column": self.columns[col_idx],
                            "percentiles": value.percentiles,
                        }
                    )
        return entries

    def save(self, directory: Path | None = None) -> Path:
        directory = results_dir() if directory is None else directory
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.figure.lower().replace(' ', '_')}.txt"
        path.write_text(self.render() + "\n", encoding="utf-8")
        return path

    def to_json(self) -> dict:
        """Machine-readable report: rows plus run provenance.

        Wall times live in the rows (whatever time columns the scenario
        measures); ``config`` and ``git_rev`` pin down the engine knobs
        and code revision they were measured at, so the perf trajectory
        is comparable across PRs.
        """
        return {
            "figure": self.figure,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [_jsonable(row) for row in self.rows],
            "latency": self._latency_entries(),
            "notes": list(self.notes),
            "config": _config_snapshot(),
            "git_rev": git_revision(),
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }

    def save_json(self, directory: Path | None = None) -> Path:
        """Persist the machine-readable ``BENCH_<figure>.json`` twin."""
        directory = results_dir() if directory is None else directory
        directory.mkdir(parents=True, exist_ok=True)
        name = self.figure.lower().replace(" ", "_")
        path = directory / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    def emit(self) -> None:
        """Print and persist (the standard end-of-benchmark call)."""
        text = self.render()
        print("\n" + text)
        self.save()
        self.save_json()


def speedup(baseline_s: float, optimized_s: float) -> float:
    """baseline / optimized (>1 means the optimization helped)."""
    if optimized_s <= 0:
        return float("inf")
    return baseline_s / optimized_s
