"""Benchmark harness for reproducing the paper's figures and tables."""

from .compare import compare_dirs, compare_reports, load_reports
from .harness import (
    RESULTS_DIR,
    FigureReport,
    Seconds,
    git_revision,
    latency_percentiles,
    median_time,
    speedup,
    time_call,
)

__all__ = [
    "FigureReport",
    "RESULTS_DIR",
    "Seconds",
    "compare_dirs",
    "compare_reports",
    "git_revision",
    "latency_percentiles",
    "load_reports",
    "median_time",
    "speedup",
    "time_call",
]
