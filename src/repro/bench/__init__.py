"""Benchmark harness for reproducing the paper's figures and tables."""

from .harness import (
    RESULTS_DIR,
    FigureReport,
    git_revision,
    median_time,
    speedup,
    time_call,
)

__all__ = [
    "FigureReport",
    "RESULTS_DIR",
    "git_revision",
    "median_time",
    "speedup",
    "time_call",
]
