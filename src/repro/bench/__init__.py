"""Benchmark harness for reproducing the paper's figures and tables."""

from .harness import (
    RESULTS_DIR,
    FigureReport,
    Seconds,
    git_revision,
    latency_percentiles,
    median_time,
    speedup,
    time_call,
)

__all__ = [
    "FigureReport",
    "RESULTS_DIR",
    "Seconds",
    "git_revision",
    "latency_percentiles",
    "median_time",
    "speedup",
    "time_call",
]
