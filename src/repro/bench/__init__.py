"""Benchmark harness for reproducing the paper's figures and tables."""

from .harness import RESULTS_DIR, FigureReport, median_time, speedup, time_call

__all__ = [
    "FigureReport",
    "RESULTS_DIR",
    "median_time",
    "speedup",
    "time_call",
]
