"""Benchmark CLI: regenerate the paper's figures without remembering pytest
flags.

Usage::

    python -m repro.bench                # run every figure/table benchmark
    python -m repro.bench fig08 fig14    # run selected figures
    python -m repro.bench --list         # show available experiments
    python -m repro.bench --smoke        # minimal sizes (CI smoke run)
    python -m repro.bench --compare DIR  # diff current BENCH_*.json vs DIR

Engine knobs (``--threads``, ``--buffer-budget-mb``, ``--morsel-rows``)
are forwarded to the benchmark process through ``REPRO_*`` environment
variables, so figure runs exercise the morsel-driven engine exactly as
configured.  Reports are printed and persisted under ``bench_results/``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

#: Experiment id -> benchmark file (relative to the repo root).
EXPERIMENTS = {
    "table1": "test_table1_scan_vs_index.py",
    "table2": "test_table2_semantic_matching.py",
    "fig08": "test_fig08_logical_optimization.py",
    "fig09": "test_fig09_scalability.py",
    "fig10": "test_fig10_input_sizes.py",
    "fig11": "test_fig11_tensor_vs_nlj.py",
    "fig12": "test_fig12_batching.py",
    "fig13": "test_fig13_minibatch.py",
    "fig14": "test_fig14_tensor_vs_nlj_e2e.py",
    "fig15": "test_fig15_topk1_selectivity.py",
    "fig16": "test_fig16_topk32_selectivity.py",
    "fig17": "test_fig17_range_selectivity.py",
    "fig_quant": "test_fig_quant.py",
    "fig_service": "test_fig_service.py",
    "fig_qos": "test_fig_qos.py",
    "fig_chaos": "test_fig_chaos.py",
    "fig_obs": "test_fig_obs.py",
    "fig_shard": "test_fig_shard.py",
    "ablation-normalization": "test_ablation_normalization.py",
    "ablation-eselection": "test_ablation_eselection_cost.py",
    "ablation-fp16": "test_ablation_fp16.py",
    "ablation-model-cost": "test_ablation_model_cost.py",
}


def find_benchmarks_dir() -> Path:
    """Locate the benchmarks/ directory (repo checkout layouts only)."""
    here = Path.cwd()
    for candidate in (here, *here.parents):
        bench = candidate / "benchmarks"
        if bench.is_dir() and any(bench.glob("test_fig*.py")):
            return bench
    raise SystemExit(
        "benchmarks/ directory not found; run from the repository checkout"
    )


def run_compare(args, parser) -> int:
    """The ``--compare`` entry point: diff report dirs, exit 1 on regression."""
    from .compare import (
        DEFAULT_THRESHOLD_PCT,
        compare_dirs,
        render_comparison,
    )

    baseline = Path(args.compare)
    if not baseline.is_dir():
        parser.error(f"--compare baseline directory not found: {baseline}")
    if args.compare_current is not None:
        current = Path(args.compare_current)
    else:
        current = Path("bench_results")
        if args.smoke:
            current = current / "smoke"
    if not current.is_dir():
        parser.error(f"current report directory not found: {current}")
    threshold = (
        DEFAULT_THRESHOLD_PCT
        if args.compare_threshold is None
        else args.compare_threshold
    )
    result = compare_dirs(baseline, current, threshold_pct=threshold)
    print(render_comparison(result))
    if args.compare_output:
        out = Path(args.compare_output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"comparison written to {out}")
    return 0 if result["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig08 table2); default: all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run every scenario at minimal sizes (fast CI sanity pass)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help="engine worker count (default: all CPUs)",
    )
    parser.add_argument(
        "--buffer-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="Figure 7 buffer budget for dense join intermediates",
    )
    parser.add_argument(
        "--morsel-rows",
        type=int,
        default=None,
        metavar="ROWS",
        help="maximum tuples per engine morsel",
    )
    parser.add_argument(
        "--shard-procs",
        type=int,
        default=None,
        metavar="N",
        help="shard worker processes for the service scan (default: 0, off)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE_DIR",
        help=(
            "compare BENCH_*.json reports against this baseline directory "
            "instead of running benchmarks; exits 1 on a p50 regression "
            "beyond the threshold"
        ),
    )
    parser.add_argument(
        "--compare-current",
        default=None,
        metavar="DIR",
        help=(
            "directory holding the current reports for --compare "
            "(default: bench_results, or bench_results/smoke with --smoke)"
        ),
    )
    parser.add_argument(
        "--compare-threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="p50 regression threshold percent for --compare (default: 20)",
    )
    parser.add_argument(
        "--compare-output",
        default=None,
        metavar="FILE",
        help="write the --compare result as JSON to this file",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.compare is not None:
        return run_compare(args, parser)

    bench_dir = find_benchmarks_dir()
    selected = args.experiments or list(EXPERIMENTS)
    files = []
    for name in selected:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; use --list to see options"
            )
        files.append(str(bench_dir / EXPERIMENTS[name]))

    env = dict(os.environ)
    if args.smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    if args.threads is not None:
        env["REPRO_THREADS"] = str(max(1, args.threads))
    if args.buffer_budget_mb is not None:
        if args.buffer_budget_mb <= 0:
            parser.error("--buffer-budget-mb must be positive")
        env["REPRO_BUFFER_BUDGET_MB"] = str(args.buffer_budget_mb)
    if args.morsel_rows is not None:
        env["REPRO_MORSEL_ROWS"] = str(max(1, args.morsel_rows))
    if args.shard_procs is not None:
        env["REPRO_SHARD_PROCS"] = str(max(0, args.shard_procs))

    command = [
        sys.executable,
        "-m",
        "pytest",
        *files,
        "--benchmark-only",
        "-q",
        "-s",
        "-p",
        "no:cacheprovider",
    ]
    return subprocess.call(command, env=env)


if __name__ == "__main__":
    raise SystemExit(main())
