"""Expression trees evaluated over columnar tables.

Expressions are the glue between declarative predicates (``taken > DATE``,
``price * qty``) and vectorized NumPy evaluation.  Every node evaluates to a
NumPy array aligned with the input table's rows; comparison and boolean
nodes produce boolean bitmaps consumed by the filter operator and by the
pre-filtering stage of the index join (Section IV-B of the paper).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from datetime import date, datetime

import numpy as np

from ..errors import ExpressionError
from .column import date_to_days
from .table import Table


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, table: Table) -> np.ndarray:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of the columns this expression reads."""
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return Comparison("==", self, lift(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison("!=", self, lift(other))

    def __lt__(self, other):
        return Comparison("<", self, lift(other))

    def __le__(self, other):
        return Comparison("<=", self, lift(other))

    def __gt__(self, other):
        return Comparison(">", self, lift(other))

    def __ge__(self, other):
        return Comparison(">=", self, lift(other))

    def __and__(self, other):
        return BooleanOp("and", self, lift(other))

    def __or__(self, other):
        return BooleanOp("or", self, lift(other))

    def __invert__(self):
        return Not(self)

    def __add__(self, other):
        return Arithmetic("+", self, lift(other))

    def __sub__(self, other):
        return Arithmetic("-", self, lift(other))

    def __mul__(self, other):
        return Arithmetic("*", self, lift(other))

    def __truediv__(self, other):
        return Arithmetic("/", self, lift(other))

    def __hash__(self):
        return id(self)

    def is_in(self, values) -> "InList":
        return InList(self, list(values))

    def between(self, lo, hi) -> "BooleanOp":
        return BooleanOp("and", self >= lo, self <= hi)


def lift(value) -> Expression:
    """Wrap a plain Python value into a :class:`Literal` if needed."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


@dataclass(eq=False)
class Col(Expression):
    """Reference to a named column."""

    name: str

    def evaluate(self, table: Table) -> np.ndarray:
        return table.array(self.name)

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"Col({self.name})"


@dataclass(eq=False)
class Literal(Expression):
    """A constant value broadcast over all rows."""

    value: object

    def evaluate(self, table: Table) -> np.ndarray:
        v = self.value
        if isinstance(v, (date, datetime)):
            v = date_to_days(v)
        return np.full(table.num_rows, v)

    def scalar(self):
        v = self.value
        if isinstance(v, (date, datetime)):
            return date_to_days(v)
        return v

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


_COMPARATORS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


def _operand(expr: Expression, table: Table) -> np.ndarray:
    """Evaluate an operand, keeping literals as scalars for broadcasting."""
    if isinstance(expr, Literal):
        return expr.scalar()
    return expr.evaluate(table)


@dataclass(eq=False)
class Comparison(Expression):
    """Binary comparison producing a boolean bitmap."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        lhs = _operand(self.left, table)
        rhs = _operand(self.right, table)
        # String columns are object arrays; elementwise comparison works but
        # NumPy needs help when both sides are object arrays of differing len.
        result = _COMPARATORS[self.op](lhs, rhs)
        return np.asarray(result, dtype=bool)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class BooleanOp(Expression):
    """Logical conjunction/disjunction of two boolean expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ExpressionError(f"unknown boolean operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        lhs = np.asarray(self.left.evaluate(table), dtype=bool)
        rhs = np.asarray(self.right.evaluate(table), dtype=bool)
        return lhs & rhs if self.op == "and" else lhs | rhs

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class Not(Expression):
    """Logical negation."""

    child: Expression

    def evaluate(self, table: Table) -> np.ndarray:
        return ~np.asarray(self.child.evaluate(table), dtype=bool)

    def columns(self) -> set[str]:
        return self.child.columns()

    def __repr__(self) -> str:
        return f"(not {self.child!r})"


@dataclass(eq=False)
class Arithmetic(Expression):
    """Binary arithmetic over numeric columns."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITH:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        lhs = _operand(self.left, table)
        rhs = _operand(self.right, table)
        return _ARITH[self.op](lhs, rhs)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class InList(Expression):
    """Membership test against a fixed list of values."""

    child: Expression
    values: list

    def evaluate(self, table: Table) -> np.ndarray:
        data = self.child.evaluate(table)
        values = [
            date_to_days(v) if isinstance(v, (date, datetime)) else v
            for v in self.values
        ]
        if data.dtype == object:
            allowed = set(values)
            return np.asarray([v in allowed for v in data], dtype=bool)
        return np.isin(data, np.asarray(values))

    def columns(self) -> set[str]:
        return self.child.columns()

    def __repr__(self) -> str:
        return f"({self.child!r} in {self.values!r})"


@dataclass(eq=False)
class StringPredicate(Expression):
    """Exact string predicates (prefix/suffix/contains).

    These are the "well-specified pattern" string operations a traditional
    RDBMS supports (paper Section I) — contrast with the semantic similarity
    the E-operators provide.
    """

    kind: str  # "prefix" | "suffix" | "contains"
    child: Expression
    needle: str

    def __post_init__(self) -> None:
        if self.kind not in ("prefix", "suffix", "contains"):
            raise ExpressionError(f"unknown string predicate {self.kind!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        data = self.child.evaluate(table)
        if self.kind == "prefix":
            test = lambda s: str(s).startswith(self.needle)
        elif self.kind == "suffix":
            test = lambda s: str(s).endswith(self.needle)
        else:
            test = lambda s: self.needle in str(s)
        return np.asarray([test(v) for v in data], dtype=bool)

    def columns(self) -> set[str]:
        return self.child.columns()

    def __repr__(self) -> str:
        return f"{self.kind}({self.child!r}, {self.needle!r})"


def validate_boolean(expr: Expression, table: Table) -> np.ndarray:
    """Evaluate ``expr`` and insist the result is a boolean bitmap."""
    result = expr.evaluate(table)
    if result.dtype != np.bool_:
        raise ExpressionError(
            f"predicate {expr!r} evaluated to {result.dtype}, expected bool"
        )
    if result.shape != (table.num_rows,):
        raise ExpressionError(
            f"predicate {expr!r} produced shape {result.shape}, expected "
            f"({table.num_rows},)"
        )
    return result


def selectivity(expr: Expression, table: Table) -> float:
    """Fraction of rows satisfying ``expr`` (0.0 for empty tables)."""
    if table.num_rows == 0:
        return 0.0
    return float(validate_boolean(expr, table).mean())
