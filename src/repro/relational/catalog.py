"""Table catalog: named registry of base tables with basic statistics.

The optimizer reads cardinalities and per-column statistics from here when
costing plans (Section IV's cost model parametrization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SchemaError
from .schema import DataType
from .table import Table


@dataclass
class ColumnStats:
    """Lightweight per-column statistics for costing and selectivity."""

    n_distinct: int
    min_value: float | None = None
    max_value: float | None = None

    @classmethod
    def compute(cls, table: Table, name: str) -> "ColumnStats":
        col = table.column(name)
        if col.dtype is DataType.TENSOR:
            return cls(n_distinct=len(col))
        data = col.data
        if data.dtype == object:
            return cls(n_distinct=len(set(data.tolist())))
        if len(data) == 0:
            return cls(n_distinct=0)
        return cls(
            n_distinct=int(len(np.unique(data))),
            min_value=float(np.min(data)),
            max_value=float(np.max(data)),
        )

    def estimate_range_selectivity(self, lo: float | None, hi: float | None) -> float:
        """Uniformity-assumption selectivity of ``lo <= x <= hi``."""
        if self.min_value is None or self.max_value is None:
            return 1.0
        span = self.max_value - self.min_value
        if span <= 0:
            return 1.0
        lo = self.min_value if lo is None else max(lo, self.min_value)
        hi = self.max_value if hi is None else min(hi, self.max_value)
        if hi < lo:
            return 0.0
        return float((hi - lo) / span)


@dataclass
class CatalogEntry:
    table: Table
    stats: dict[str, ColumnStats] = field(default_factory=dict)

    def column_stats(self, name: str) -> ColumnStats:
        if name not in self.stats:
            self.stats[name] = ColumnStats.compute(self.table, name)
        return self.stats[name]


@dataclass(frozen=True)
class ShardMap:
    """Contiguous row-range partitioning of one registered table version.

    Extends the catalog's per-table versioning down to row ranges: the map
    is valid exactly as long as ``catalog.version(table_name) == version``,
    so anything holding shard-local state (published shared-memory
    segments, per-shard heaps) can key on ``(table_name, version,
    n_shards)`` and be invalidated by re-registration for free.

    Ranges are half-open ``[start, stop)``, cover ``[0, n_rows)`` exactly
    once in ascending order, and are balanced to within one row — so a
    shard-by-shard scan visits rows in the same ascending order as a
    serial scan, which is what keeps merged tie-breaks bit-identical.
    """

    table_name: str
    version: int
    n_rows: int
    ranges: tuple[tuple[int, int], ...]

    @property
    def n_shards(self) -> int:
        return len(self.ranges)

    @classmethod
    def build(
        cls, table_name: str, version: int, n_rows: int, n_shards: int
    ) -> "ShardMap":
        if n_shards < 1:
            raise SchemaError(f"n_shards must be >= 1, got {n_shards}")
        if n_rows < 0:
            raise SchemaError(f"n_rows must be >= 0, got {n_rows}")
        bounds = np.linspace(0, n_rows, n_shards + 1).astype(np.int64)
        ranges = tuple(
            (int(bounds[i]), int(bounds[i + 1])) for i in range(n_shards)
        )
        return cls(
            table_name=table_name,
            version=version,
            n_rows=n_rows,
            ranges=ranges,
        )


class Catalog:
    """Named registry of base tables."""

    def __init__(self) -> None:
        self._entries: dict[str, CatalogEntry] = {}
        self._versions: dict[str, int] = {}
        self._shard_maps: dict[tuple[str, int, int], ShardMap] = {}

    def register(self, name: str, table: Table, *, replace: bool = False) -> None:
        if name in self._entries and not replace:
            raise SchemaError(f"table {name!r} already registered")
        self._entries[name] = CatalogEntry(table)
        # Monotonic per-name version: never reset on drop, so any cache
        # keyed by (name, version) is invalidated by re-registration even
        # through a drop/register cycle.
        self._versions[name] = self._versions.get(name, 0) + 1

    def version(self, name: str) -> int:
        """Registration version of ``name`` (bumped on every register)."""
        self.get(name)  # raise on unknown tables
        return self._versions[name]

    def drop(self, name: str) -> None:
        if name not in self._entries:
            raise SchemaError(f"table {name!r} is not registered")
        del self._entries[name]

    def get(self, name: str) -> Table:
        if name not in self._entries:
            raise SchemaError(
                f"unknown table {name!r}; have {sorted(self._entries)}"
            )
        return self._entries[name].table

    def entry(self, name: str) -> CatalogEntry:
        self.get(name)
        return self._entries[name]

    def cardinality(self, name: str) -> int:
        return self.get(name).num_rows

    def shard_map(self, name: str, n_shards: int) -> ShardMap:
        """Row-range partitioning of ``name`` at its current version.

        Cached by ``(name, version, n_shards)``: re-registering a table
        bumps its version, so stale maps are never returned and holders
        can compare ``map.version`` against :meth:`version` to detect
        invalidation.
        """
        version = self.version(name)
        key = (name, version, int(n_shards))
        cached = self._shard_maps.get(key)
        if cached is None:
            cached = ShardMap.build(
                name, version, self.cardinality(name), int(n_shards)
            )
            self._shard_maps[key] = cached
        return cached

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries
