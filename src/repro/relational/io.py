"""Table persistence: save/load columnar tables to a single ``.npz`` file.

A minimal storage layer so catalogs (and the embeddings materialized by the
prefetch optimization) survive process restarts — embedding once and
reusing across sessions is the cross-query extension of the paper's
embed-once logical optimization.

Format: one NumPy ``.npz`` archive holding each column's physical array
under its column name, plus a JSON schema under the reserved key
``__schema__``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import SchemaError
from .schema import DataType, Field, Schema
from .table import Table

_SCHEMA_KEY = "__schema__"


def schema_to_json(schema: Schema) -> str:
    """Serialize a schema to a JSON string."""
    fields = [
        {
            "name": f.name,
            "dtype": f.dtype.value,
            "dim": f.dim,
            "nullable": f.nullable,
        }
        for f in schema
    ]
    return json.dumps({"fields": fields})


def schema_from_json(payload: str) -> Schema:
    """Inverse of :func:`schema_to_json`."""
    try:
        data = json.loads(payload)
        fields = tuple(
            Field(
                f["name"],
                DataType(f["dtype"]),
                dim=int(f.get("dim", 0)),
                nullable=bool(f.get("nullable", False)),
            )
            for f in data["fields"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed schema payload: {exc}") from exc
    return Schema(fields)


def save_table(table: Table, path: str | Path) -> Path:
    """Write a table to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays: dict[str, np.ndarray] = {}
    for name in table.schema.names:
        if name == _SCHEMA_KEY:
            raise SchemaError(f"column name {name!r} is reserved")
        data = table.array(name)
        if data.dtype == object:
            # Object (string/context) columns round-trip via UTF-8 arrays.
            data = np.asarray([str(v) for v in data], dtype=np.str_)
        arrays[name] = data
    arrays[_SCHEMA_KEY] = np.asarray(schema_to_json(table.schema))
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_table(path: str | Path) -> Table:
    """Read a table previously written by :func:`save_table`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        if _SCHEMA_KEY not in archive:
            raise SchemaError(f"{path} is not a repro table archive")
        schema = schema_from_json(str(archive[_SCHEMA_KEY]))
        arrays: dict[str, np.ndarray] = {}
        for f in schema:
            data = archive[f.name]
            if f.dtype in (DataType.STRING, DataType.CONTEXT):
                out = np.empty(len(data), dtype=object)
                out[:] = [str(v) for v in data]
                data = out
            arrays[f.name] = data
    return Table.from_arrays(schema, arrays)
