"""Relational engine substrate: columnar storage, expressions, operators."""

from .catalog import Catalog, ColumnStats
from .column import Column, date_to_days, days_to_date
from .expressions import (
    Col,
    Comparison,
    Expression,
    InList,
    Literal,
    StringPredicate,
    selectivity,
)
from .io import load_table, save_table
from .schema import DataType, Field, Schema
from .table import Table

__all__ = [
    "Catalog",
    "Col",
    "Column",
    "ColumnStats",
    "Comparison",
    "DataType",
    "Expression",
    "Field",
    "InList",
    "Literal",
    "Schema",
    "StringPredicate",
    "Table",
    "date_to_days",
    "load_table",
    "save_table",
    "days_to_date",
    "selectivity",
]
