"""Schema definitions for the relational substrate.

A :class:`Schema` is an ordered collection of :class:`Field` objects.  The
engine supports the classic atomic types plus two extensions the paper
requires:

* ``TENSOR`` — fixed-dimensionality embedding vectors.  Following Section IV
  of the paper, tensors are *atomic* from the DBMS's point of view (1NF is
  preserved: the engine never decomposes them except inside dedicated vector
  kernels).
* ``CONTEXT`` — context-rich payloads (strings, serialized blobs) that are
  opaque to relational predicates but can be mapped to ``TENSOR`` via an
  embedding operator ``E_mu``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import SchemaError


class DataType(enum.Enum):
    """Logical column types understood by the engine."""

    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    BOOL = "bool"
    DATE = "date"       # stored as int64 days-since-epoch
    STRING = "string"   # context-rich, object-backed
    TENSOR = "tensor"   # fixed-dim float32 vectors
    CONTEXT = "context" # opaque context-rich payloads (non-string blobs)

    @property
    def numpy_dtype(self) -> np.dtype:
        """Physical NumPy dtype used to store values of this type."""
        mapping = {
            DataType.INT64: np.dtype(np.int64),
            DataType.FLOAT32: np.dtype(np.float32),
            DataType.FLOAT64: np.dtype(np.float64),
            DataType.BOOL: np.dtype(np.bool_),
            DataType.DATE: np.dtype(np.int64),
            DataType.STRING: np.dtype(object),
            DataType.TENSOR: np.dtype(np.float32),
            DataType.CONTEXT: np.dtype(object),
        }
        return mapping[self]

    @property
    def is_numeric(self) -> bool:
        return self in (
            DataType.INT64,
            DataType.FLOAT32,
            DataType.FLOAT64,
            DataType.DATE,
        )

    @property
    def is_context_rich(self) -> bool:
        """True for types opaque to relational predicates (need a model)."""
        return self in (DataType.STRING, DataType.CONTEXT)


@dataclass(frozen=True)
class Field:
    """A named, typed column descriptor.

    Attributes:
        name: Column name, unique within a schema.
        dtype: Logical type.
        dim: Dimensionality for ``TENSOR`` columns (ignored otherwise).
        nullable: Whether NULLs may appear (stored as NaN / None sentinels).
    """

    name: str
    dtype: DataType
    dim: int = 0
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")
        if self.dtype is DataType.TENSOR and self.dim <= 0:
            raise SchemaError(
                f"tensor field {self.name!r} requires a positive dim, got {self.dim}"
            )
        if self.dtype is not DataType.TENSOR and self.dim:
            raise SchemaError(
                f"non-tensor field {self.name!r} must not declare dim={self.dim}"
            )


@dataclass(frozen=True)
class Schema:
    """Ordered, name-unique collection of fields."""

    fields: tuple[Field, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names in schema: {dupes}")

    @classmethod
    def of(cls, *fields: Field) -> "Schema":
        return cls(tuple(fields))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __contains__(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def field(self, name: str) -> Field:
        """Look up a field by name, raising :class:`SchemaError` if absent."""
        for f in self.fields:
            if f.name == name:
                return f
        raise SchemaError(f"unknown column {name!r}; have {list(self.names)}")

    def index_of(self, name: str) -> int:
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise SchemaError(f"unknown column {name!r}; have {list(self.names)}")

    def select(self, names: list[str] | tuple[str, ...]) -> "Schema":
        """Projection: a new schema with the given columns, in given order."""
        return Schema(tuple(self.field(n) for n in names))

    def add(self, new_field: Field) -> "Schema":
        """Return a schema extended with one more field."""
        if new_field.name in self:
            raise SchemaError(f"column {new_field.name!r} already exists")
        return Schema(self.fields + (new_field,))

    def drop(self, name: str) -> "Schema":
        self.field(name)  # validate existence
        return Schema(tuple(f for f in self.fields if f.name != name))

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with columns renamed per ``mapping``."""
        for old in mapping:
            self.field(old)
        renamed = tuple(
            Field(mapping.get(f.name, f.name), f.dtype, f.dim, f.nullable)
            for f in self.fields
        )
        return Schema(renamed)

    def concat(self, other: "Schema", *, prefixes: tuple[str, str] | None = None) -> "Schema":
        """Schema of a join output.

        Overlapping names are disambiguated with ``prefixes`` (e.g.
        ``("l_", "r_")``); without prefixes an overlap raises.
        """
        overlap = set(self.names) & set(other.names)
        if overlap and prefixes is None:
            raise SchemaError(
                f"join schemas overlap on {sorted(overlap)}; provide prefixes"
            )
        if prefixes is None:
            return Schema(self.fields + other.fields)
        lp, rp = prefixes

        def _apply(fields: tuple[Field, ...], prefix: str) -> tuple[Field, ...]:
            return tuple(
                Field(
                    prefix + f.name if f.name in overlap else f.name,
                    f.dtype,
                    f.dim,
                    f.nullable,
                )
                for f in fields
            )

        return Schema(_apply(self.fields, lp) + _apply(other.fields, rp))
