"""Sort and limit operators."""

from __future__ import annotations

from collections.abc import Iterator

from ...relational.schema import Schema
from ...relational.table import Table
from .base import PhysicalOperator


class Sort(PhysicalOperator):
    """Full materializing sort by one column (stable)."""

    def __init__(
        self, child: PhysicalOperator, key: str, *, descending: bool = False
    ) -> None:
        super().__init__()
        child.output_schema.field(key)  # validate
        self._child = child
        self._key = key
        self._descending = descending

    @property
    def output_schema(self) -> Schema:
        return self._child.output_schema

    def batches(self) -> Iterator[Table]:
        table = self._child.execute()
        self.stats.rows_in += table.num_rows
        out = table.sort_by(self._key, descending=self._descending)
        self.stats.rows_out += out.num_rows
        self.stats.batches += 1
        yield out

    def describe(self) -> str:
        direction = "desc" if self._descending else "asc"
        return f"Sort({self._key} {direction})"

    def children(self) -> list[PhysicalOperator]:
        return [self._child]


class Limit(PhysicalOperator):
    """Pass through at most ``n`` rows."""

    def __init__(self, child: PhysicalOperator, n: int) -> None:
        super().__init__()
        if n < 0:
            raise ValueError(f"limit must be non-negative, got {n}")
        self._child = child
        self._n = n

    @property
    def output_schema(self) -> Schema:
        return self._child.output_schema

    def batches(self) -> Iterator[Table]:
        remaining = self._n
        for batch in self._child.batches():
            self.stats.rows_in += batch.num_rows
            if remaining <= 0:
                break
            out = batch if batch.num_rows <= remaining else batch.slice(0, remaining)
            remaining -= out.num_rows
            self.stats.rows_out += out.num_rows
            self.stats.batches += 1
            yield out

    def describe(self) -> str:
        return f"Limit({self._n})"

    def children(self) -> list[PhysicalOperator]:
        return [self._child]
