"""E-join as a batch-at-a-time physical operator.

Integrates the context-enhanced join into the vectorized operator pipeline:
the right (inner) relation is materialized and embedded once, then left
batches stream through, each joined with one blocked-GEMM call and
materialized lazily.  This is the operator a pipelined engine would place
in a plan tree, as opposed to the materialize-then-join shortcut the
physical planner uses for whole-query execution.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ...core.conditions import JoinCondition, validate_condition
from ...core.tensor_join import tensor_join
from ...embedding.cache import EmbeddingStore
from ...embedding.base import EmbeddingModel
from ...errors import SchemaError
from ...relational.column import Column
from ...relational.schema import DataType, Field, Schema
from ...relational.table import Table
from ...vector.norms import normalize_rows
from .base import PhysicalOperator


class EJoinOperator(PhysicalOperator):
    """Streaming context-enhanced join over two child operators."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_column: str,
        right_column: str,
        model: EmbeddingModel,
        condition: JoinCondition,
        *,
        prefixes: tuple[str, str] = ("l_", "r_"),
        score_column: str = "similarity",
        batch_right: int | None = None,
    ) -> None:
        super().__init__()
        validate_condition(condition)
        left.output_schema.field(left_column)
        right.output_schema.field(right_column)
        self._left = left
        self._right = right
        self._left_column = left_column
        self._right_column = right_column
        self._model = model
        self._condition = condition
        self._prefixes = prefixes
        self._score_column = score_column
        self._batch_right = batch_right
        base = left.output_schema.concat(right.output_schema, prefixes=prefixes)
        if score_column in base:
            raise SchemaError(
                f"score column {score_column!r} collides with input columns"
            )
        self._schema = base.add(Field(score_column, DataType.FLOAT32))

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _column_vectors(self, table: Table, name: str, store: EmbeddingStore) -> np.ndarray:
        field = table.schema.field(name)
        if field.dtype is DataType.TENSOR:
            return normalize_rows(table.array(name))
        return normalize_rows(store.embed_items(table.array(name).tolist()))

    def batches(self) -> Iterator[Table]:
        store = EmbeddingStore(self._model)
        inner = self._right.execute()
        inner_vectors = self._column_vectors(inner, self._right_column, store)
        self.stats.extra["inner_rows"] = inner.num_rows

        for batch in self._left.batches():
            self.stats.rows_in += batch.num_rows
            if batch.num_rows == 0 or inner.num_rows == 0:
                continue
            batch_vectors = self._column_vectors(batch, self._left_column, store)
            result = tensor_join(
                batch_vectors,
                inner_vectors,
                self._condition,
                batch_right=self._batch_right,
                assume_normalized=True,
            )
            if len(result) == 0:
                continue
            out = batch.take(result.left_ids).zip_columns(
                inner.take(result.right_ids), prefixes=self._prefixes
            )
            out = out.with_column(
                Column(Field(self._score_column, DataType.FLOAT32), result.scores)
            )
            self.stats.rows_out += out.num_rows
            self.stats.batches += 1
            yield out

    def describe(self) -> str:
        return (
            f"EJoinOperator({self._left_column} ~ {self._right_column}, "
            f"mu={self._model.name}, {self._condition})"
        )

    def children(self) -> list[PhysicalOperator]:
        return [self._left, self._right]
