"""Generic theta nested-loop join over relational predicates.

This is the classic relational NLJ the paper's E-NLJ extends: it evaluates
an arbitrary theta predicate over the cross product, in block-nested form so
the predicate runs vectorized over (left-batch x right) slabs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from ...relational.schema import Schema
from ...relational.table import Table
from .base import DEFAULT_BATCH_SIZE, PhysicalOperator

#: A theta predicate: given the materialized pair table, return a bitmap.
ThetaPredicate = Callable[[Table], np.ndarray]


class NestedLoopJoin(PhysicalOperator):
    """Block nested-loop theta-join."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        theta: ThetaPredicate,
        *,
        prefixes: tuple[str, str] = ("l_", "r_"),
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__()
        self._left = left
        self._right = right
        self._theta = theta
        self._prefixes = prefixes
        self._batch_size = batch_size
        self._schema = left.output_schema.concat(
            right.output_schema, prefixes=prefixes
        )

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def batches(self) -> Iterator[Table]:
        inner = self._right.execute()
        n_inner = inner.num_rows
        for batch in self._left.batches():
            self.stats.rows_in += batch.num_rows
            if batch.num_rows == 0 or n_inner == 0:
                continue
            # Materialize the (batch x inner) pair block positionally.
            left_idx = np.repeat(np.arange(batch.num_rows), n_inner)
            right_idx = np.tile(np.arange(n_inner), batch.num_rows)
            pairs = batch.take(left_idx).zip_columns(
                inner.take(right_idx), prefixes=self._prefixes
            )
            bitmap = np.asarray(self._theta(pairs), dtype=bool)
            out = pairs.mask(bitmap)
            if out.num_rows == 0:
                continue
            self.stats.rows_out += out.num_rows
            self.stats.batches += 1
            yield out

    def describe(self) -> str:
        return "NestedLoopJoin(theta)"

    def children(self) -> list[PhysicalOperator]:
        return [self._left, self._right]
