"""Equi-join via hashing.

The paper notes (Section IV-A) that an *equi*-join over tensors could be a
hash join, but similarity predicates over embeddings need pairwise
comparisons — the hash join is therefore the relational baseline operator,
used for exact-key joins in hybrid plans and as a correctness oracle in
tests.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ...errors import TypeMismatchError
from ...relational.schema import DataType, Schema
from ...relational.table import Table
from .base import DEFAULT_BATCH_SIZE, PhysicalOperator


class HashJoin(PhysicalOperator):
    """In-memory hash equi-join (build on right, probe with left)."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key: str,
        right_key: str,
        *,
        prefixes: tuple[str, str] = ("l_", "r_"),
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__()
        for side, key in ((left, left_key), (right, right_key)):
            f = side.output_schema.field(key)
            if f.dtype is DataType.TENSOR:
                raise TypeMismatchError(
                    "hash join over tensor keys is not meaningful; use an "
                    "E-join (similarity) operator instead"
                )
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._prefixes = prefixes
        self._batch_size = batch_size
        self._schema = left.output_schema.concat(
            right.output_schema, prefixes=prefixes
        )

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def batches(self) -> Iterator[Table]:
        build = self._right.execute()
        ht: dict[object, list[int]] = {}
        for i, key in enumerate(build.array(self._right_key)):
            ht.setdefault(key, []).append(i)
        self.stats.extra["build_rows"] = build.num_rows

        for batch in self._left.batches():
            self.stats.rows_in += batch.num_rows
            left_idx: list[int] = []
            right_idx: list[int] = []
            for i, key in enumerate(batch.array(self._left_key)):
                for j in ht.get(key, ()):
                    left_idx.append(i)
                    right_idx.append(j)
            if not left_idx:
                continue
            out = batch.take(np.asarray(left_idx)).zip_columns(
                build.take(np.asarray(right_idx)), prefixes=self._prefixes
            )
            self.stats.rows_out += out.num_rows
            self.stats.batches += 1
            yield out

    def describe(self) -> str:
        return f"HashJoin({self._left_key} == {self._right_key})"

    def children(self) -> list[PhysicalOperator]:
        return [self._left, self._right]
