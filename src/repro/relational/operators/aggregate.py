"""Hash aggregation operator."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ...errors import ExpressionError, SchemaError
from ...relational.schema import DataType, Field, Schema
from ...relational.table import Table
from .base import PhysicalOperator

_AGG_FUNCS = {
    "count": lambda v: len(v),
    "sum": lambda v: float(np.sum(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "mean": lambda v: float(np.mean(v)),
}


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``func(column) AS alias``."""

    func: str
    column: str | None  # None only valid for count(*)
    alias: str

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise ExpressionError(
                f"unknown aggregate {self.func!r}; have {sorted(_AGG_FUNCS)}"
            )
        if self.column is None and self.func != "count":
            raise ExpressionError(f"{self.func} requires a column")


class Aggregate(PhysicalOperator):
    """Group-by hash aggregation (full materialization)."""

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: list[str],
        aggs: list[AggSpec],
    ) -> None:
        super().__init__()
        if not aggs:
            raise SchemaError("at least one aggregate is required")
        self._child = child
        self._group_by = list(group_by)
        self._aggs = list(aggs)
        in_schema = child.output_schema
        group_fields = tuple(in_schema.field(g) for g in self._group_by)
        agg_fields = tuple(
            Field(a.alias, DataType.INT64 if a.func == "count" else DataType.FLOAT64)
            for a in self._aggs
        )
        self._schema = Schema(group_fields + agg_fields)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def batches(self) -> Iterator[Table]:
        table = self._child.execute()
        self.stats.rows_in += table.num_rows
        groups: dict[tuple, list[int]] = {}
        if self._group_by:
            key_arrays = [table.array(g) for g in self._group_by]
            for i in range(table.num_rows):
                key = tuple(arr[i] for arr in key_arrays)
                groups.setdefault(key, []).append(i)
        else:
            groups[()] = list(range(table.num_rows))

        out_rows: list[dict] = []
        for key, idx in groups.items():
            row: dict = dict(zip(self._group_by, key))
            indices = np.asarray(idx)
            for a in self._aggs:
                if a.func == "count":
                    row[a.alias] = len(indices)
                else:
                    values = table.array(a.column)[indices]
                    row[a.alias] = _AGG_FUNCS[a.func](values)
            out_rows.append(row)

        if not out_rows:
            return
        out = Table.from_dicts(self._schema, out_rows)
        self.stats.rows_out += out.num_rows
        self.stats.batches += 1
        yield out

    def describe(self) -> str:
        aggs = ", ".join(f"{a.func}({a.column or '*'})" for a in self._aggs)
        return f"Aggregate(by={self._group_by}, aggs=[{aggs}])"

    def children(self) -> list[PhysicalOperator]:
        return [self._child]
