"""Table scan operator."""

from __future__ import annotations

from collections.abc import Iterator

from ...relational.schema import Schema
from ...relational.table import Table
from .base import DEFAULT_BATCH_SIZE, PhysicalOperator


class Scan(PhysicalOperator):
    """Full sequential scan over an in-memory table.

    The scan is the access path the paper's tensor join builds on: cheap,
    fully amenable to relational filtering, and exact (Table I).
    """

    def __init__(self, table: Table, *, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        super().__init__()
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._table = table
        self._batch_size = batch_size

    @property
    def output_schema(self) -> Schema:
        return self._table.schema

    def batches(self) -> Iterator[Table]:
        n = self._table.num_rows
        for start in range(0, n, self._batch_size):
            batch = self._table.slice(start, start + self._batch_size)
            self.stats.rows_in += batch.num_rows
            self.stats.rows_out += batch.num_rows
            self.stats.batches += 1
            yield batch

    def describe(self) -> str:
        return f"Scan(rows={self._table.num_rows}, batch={self._batch_size})"
