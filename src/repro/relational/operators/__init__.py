"""Physical relational operators."""

from .aggregate import AggSpec, Aggregate
from .base import DEFAULT_BATCH_SIZE, OperatorStats, PhysicalOperator
from .ejoin_op import EJoinOperator
from .filter import Filter
from .hash_join import HashJoin
from .nested_loop_join import NestedLoopJoin
from .project import Project
from .scan import Scan
from .sort import Limit, Sort

__all__ = [
    "AggSpec",
    "Aggregate",
    "DEFAULT_BATCH_SIZE",
    "EJoinOperator",
    "Filter",
    "HashJoin",
    "Limit",
    "NestedLoopJoin",
    "OperatorStats",
    "PhysicalOperator",
    "Project",
    "Scan",
    "Sort",
]
