"""Selection (filter) operator: sigma_theta."""

from __future__ import annotations

from collections.abc import Iterator

from ...relational.expressions import Expression, validate_boolean
from ...relational.schema import Schema
from ...relational.table import Table
from .base import PhysicalOperator


class Filter(PhysicalOperator):
    """Applies a boolean predicate, keeping satisfying rows."""

    def __init__(self, child: PhysicalOperator, predicate: Expression) -> None:
        super().__init__()
        self._child = child
        self._predicate = predicate

    @property
    def output_schema(self) -> Schema:
        return self._child.output_schema

    def batches(self) -> Iterator[Table]:
        for batch in self._child.batches():
            self.stats.rows_in += batch.num_rows
            bitmap = validate_boolean(self._predicate, batch)
            out = batch.mask(bitmap)
            if out.num_rows == 0:
                continue
            self.stats.rows_out += out.num_rows
            self.stats.batches += 1
            yield out

    def describe(self) -> str:
        return f"Filter({self._predicate!r})"

    def children(self) -> list[PhysicalOperator]:
        return [self._child]
