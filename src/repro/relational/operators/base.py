"""Physical operator interface.

Operators follow a batch-at-a-time (vectorized) iterator model: ``open()``
resets state, ``batches()`` yields :class:`~repro.relational.table.Table`
chunks, and ``execute()`` materialises the full result.  Batch-at-a-time is
the execution style of vectorized engines the paper builds on (VectorWise
lineage, ref [39]) and keeps per-batch NumPy kernels amortized.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from ...relational.schema import Schema
from ...relational.table import Table

#: Default number of rows per vectorized batch.
DEFAULT_BATCH_SIZE = 4096


@dataclass
class OperatorStats:
    """Execution counters every operator maintains."""

    rows_in: int = 0
    rows_out: int = 0
    batches: int = 0
    extra: dict = field(default_factory=dict)


class PhysicalOperator:
    """Base class for physical operators."""

    def __init__(self) -> None:
        self.stats = OperatorStats()

    @property
    def output_schema(self) -> Schema:
        raise NotImplementedError

    def batches(self) -> Iterator[Table]:
        raise NotImplementedError

    def execute(self) -> Table:
        """Materialise the full operator output as one table.

        Batches accumulate in a list and concatenate once — one copy of
        the output data, instead of the O(n^2) bytes a pairwise
        concat-per-batch chain would touch.
        """
        batches = list(self.batches())
        if not batches:
            return Table.empty(self.output_schema)
        return Table.concat_all(batches)

    def explain(self, depth: int = 0) -> str:
        """Indented textual representation of the operator subtree."""
        pad = "  " * depth
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> list["PhysicalOperator"]:
        return []
