"""Projection operator, including computed columns."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ...errors import SchemaError
from ...relational.column import Column
from ...relational.expressions import Expression
from ...relational.schema import DataType, Field, Schema
from ...relational.table import Table
from .base import PhysicalOperator


class Project(PhysicalOperator):
    """Column selection plus optional computed expressions.

    ``computed`` maps output column names to expressions; computed columns
    are typed by inspecting their first evaluated batch (FLOAT64 for numeric
    results, BOOL for bitmaps).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        names: list[str],
        computed: dict[str, Expression] | None = None,
    ) -> None:
        super().__init__()
        self._child = child
        self._names = list(names)
        self._computed = dict(computed or {})
        overlap = set(self._names) & set(self._computed)
        if overlap:
            raise SchemaError(
                f"computed columns {sorted(overlap)} collide with projected names"
            )
        base = child.output_schema.select(self._names)
        computed_fields = tuple(
            Field(name, DataType.FLOAT64) for name in self._computed
        )
        self._schema = Schema(base.fields + computed_fields)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def batches(self) -> Iterator[Table]:
        for batch in self._child.batches():
            self.stats.rows_in += batch.num_rows
            out = batch.select(self._names)
            for name, expr in self._computed.items():
                values = np.asarray(expr.evaluate(batch), dtype=np.float64)
                out = out.with_column(
                    Column(Field(name, DataType.FLOAT64), values)
                )
            self.stats.rows_out += out.num_rows
            self.stats.batches += 1
            yield out

    def describe(self) -> str:
        extra = f", computed={list(self._computed)}" if self._computed else ""
        return f"Project({self._names}{extra})"

    def children(self) -> list[PhysicalOperator]:
        return [self._child]
