"""Typed columnar storage.

A :class:`Column` pairs a :class:`~repro.relational.schema.Field` with its
physical data.  Scalar columns are 1-D NumPy arrays; ``TENSOR`` columns are
2-D ``(n_rows, dim)`` float32 matrices so the tensor-join can hand them to
BLAS without copying; ``STRING``/``CONTEXT`` columns are object arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime

import numpy as np

from ..errors import SchemaError, TypeMismatchError
from .schema import DataType, Field

_EPOCH = date(1970, 1, 1)


def date_to_days(value: date | datetime | str | int) -> int:
    """Convert a date-like value to int64 days since the Unix epoch."""
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, datetime):
        value = value.date()
    if isinstance(value, str):
        value = date.fromisoformat(value)
    if not isinstance(value, date):
        raise TypeMismatchError(f"cannot interpret {value!r} as a date")
    return (value - _EPOCH).days


def days_to_date(days: int) -> date:
    """Inverse of :func:`date_to_days`."""
    return date.fromordinal(_EPOCH.toordinal() + int(days))


def coerce_values(field: Field, values) -> np.ndarray:
    """Coerce a Python/NumPy sequence into this field's physical layout.

    Raises :class:`TypeMismatchError` for layouts that cannot represent the
    declared type (e.g. a 1-D array for a tensor column).
    """
    dtype = field.dtype
    if dtype is DataType.TENSOR:
        arr = np.asarray(values, dtype=np.float32)
        if arr.ndim != 2:
            raise TypeMismatchError(
                f"tensor column {field.name!r} expects a 2-D array, got ndim={arr.ndim}"
            )
        if arr.shape[1] != field.dim:
            raise TypeMismatchError(
                f"tensor column {field.name!r} expects dim={field.dim}, "
                f"got {arr.shape[1]}"
            )
        return np.ascontiguousarray(arr)
    if dtype is DataType.DATE:
        if isinstance(values, np.ndarray) and values.dtype.kind in "iu":
            return values.astype(np.int64)
        return np.asarray([date_to_days(v) for v in values], dtype=np.int64)
    if dtype in (DataType.STRING, DataType.CONTEXT):
        arr = np.empty(len(values), dtype=object)
        arr[:] = list(values)
        return arr
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise TypeMismatchError(
            f"scalar column {field.name!r} expects a 1-D array, got ndim={arr.ndim}"
        )
    try:
        return arr.astype(dtype.numpy_dtype, casting="same_kind", copy=False)
    except TypeError:
        # Integral literals into float columns and similar benign widenings.
        return arr.astype(dtype.numpy_dtype)


@dataclass
class Column:
    """A named, typed column of values."""

    field: Field
    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = coerce_values(self.field, self.data)

    @classmethod
    def from_values(cls, name: str, dtype: DataType, values, *, dim: int = 0) -> "Column":
        return cls(Field(name, dtype, dim=dim), values)

    @property
    def name(self) -> str:
        return self.field.name

    @property
    def dtype(self) -> DataType:
        return self.field.dtype

    def __len__(self) -> int:
        return len(self.data)

    def take(self, indices: np.ndarray) -> "Column":
        """Row-subset by integer positions (late materialization helper)."""
        return Column(self.field, self.data[np.asarray(indices)])

    def mask(self, bitmap: np.ndarray) -> "Column":
        """Row-subset by boolean bitmap."""
        bitmap = np.asarray(bitmap, dtype=bool)
        if len(bitmap) != len(self):
            raise SchemaError(
                f"bitmap length {len(bitmap)} != column length {len(self)}"
            )
        return Column(self.field, self.data[bitmap])

    def rename(self, name: str) -> "Column":
        f = self.field
        return Column(Field(name, f.dtype, f.dim, f.nullable), self.data)

    def concat(self, other: "Column") -> "Column":
        return Column.concat_all([self, other])

    @classmethod
    def concat_all(cls, columns: "list[Column]") -> "Column":
        """Concatenate many same-typed columns in one allocation.

        The n-ary form of :meth:`concat`: one ``np.concatenate`` instead
        of a quadratic chain of pairwise copies.
        """
        if not columns:
            raise TypeMismatchError("concat_all needs at least one column")
        first = columns[0].field
        for col in columns[1:]:
            if col.field.dtype is not first.dtype or col.field.dim != first.dim:
                raise TypeMismatchError(
                    f"cannot concat {first} with {col.field}"
                )
        return Column(first, np.concatenate([c.data for c in columns]))

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        if self.data.dtype == object:
            return int(sum(len(str(v)) for v in self.data)) + 8 * len(self.data)
        return int(self.data.nbytes)

    def to_pylist(self) -> list:
        """Materialise as a Python list (dates decoded)."""
        if self.dtype is DataType.DATE:
            return [days_to_date(v) for v in self.data]
        if self.dtype is DataType.TENSOR:
            return [row.copy() for row in self.data]
        return self.data.tolist()
