"""Columnar in-memory tables.

:class:`Table` is the engine's unit of data exchange: operators consume and
produce tables.  Storage is column-major so relational predicates run as
vectorized NumPy expressions and tensor columns feed directly into BLAS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchemaError, TypeMismatchError
from .column import Column, coerce_values
from .schema import DataType, Schema


@dataclass
class Table:
    """An immutable-by-convention columnar table."""

    schema: Schema
    columns: dict[str, Column]

    def __post_init__(self) -> None:
        if set(self.columns) != set(self.schema.names):
            raise SchemaError(
                f"columns {sorted(self.columns)} do not match schema "
                f"{list(self.schema.names)}"
            )
        lengths = {name: len(col) for name, col in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged column lengths: {lengths}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, columns: list[Column]) -> "Table":
        schema = Schema(tuple(c.field for c in columns))
        return cls(schema, {c.name: c for c in columns})

    @classmethod
    def from_arrays(cls, schema: Schema, arrays: dict[str, np.ndarray]) -> "Table":
        cols = {
            f.name: Column(f, coerce_values(f, arrays[f.name])) for f in schema
        }
        return cls(schema, cols)

    @classmethod
    def from_dicts(cls, schema: Schema, rows: list[dict]) -> "Table":
        """Build from row dictionaries (convenience for tests/examples)."""
        arrays = {}
        for f in schema:
            values = [row[f.name] for row in rows]
            if f.dtype is DataType.TENSOR:
                values = np.asarray(values, dtype=np.float32).reshape(
                    len(rows), f.dim
                )
            arrays[f.name] = values
        return cls.from_arrays(schema, arrays)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        arrays = {}
        for f in schema:
            if f.dtype is DataType.TENSOR:
                arrays[f.name] = np.empty((0, f.dim), dtype=np.float32)
            else:
                arrays[f.name] = np.empty(0, dtype=f.dtype.numpy_dtype)
        return cls.from_arrays(schema, arrays)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        if not self.schema.fields:
            return 0
        return len(self.columns[self.schema.names[0]])

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> Column:
        if name not in self.columns:
            raise SchemaError(
                f"unknown column {name!r}; have {list(self.schema.names)}"
            )
        return self.columns[name]

    def array(self, name: str) -> np.ndarray:
        """Raw physical array of a column (no copy)."""
        return self.column(name).data

    def nbytes(self) -> int:
        return sum(col.nbytes() for col in self.columns.values())

    def row(self, i: int) -> dict:
        """Materialise one row as a dict (debug/example helper)."""
        if not 0 <= i < self.num_rows:
            raise IndexError(f"row {i} out of range [0, {self.num_rows})")
        return {name: self.columns[name].data[i] for name in self.schema.names}

    def to_dicts(self) -> list[dict]:
        names = self.schema.names
        cols = [self.columns[n].to_pylist() for n in names]
        return [dict(zip(names, values)) for values in zip(*cols)] if names else []

    # ------------------------------------------------------------------
    # Row-level operations (positional)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        indices = np.asarray(indices)
        return Table(
            self.schema,
            {name: col.take(indices) for name, col in self.columns.items()},
        )

    def mask(self, bitmap: np.ndarray) -> "Table":
        return Table(
            self.schema,
            {name: col.mask(bitmap) for name, col in self.columns.items()},
        )

    def slice(self, start: int, stop: int) -> "Table":
        idx = np.arange(max(start, 0), min(stop, self.num_rows))
        return self.take(idx)

    def head(self, n: int = 5) -> "Table":
        return self.slice(0, n)

    # ------------------------------------------------------------------
    # Column-level operations
    # ------------------------------------------------------------------
    def select(self, names: list[str]) -> "Table":
        schema = self.schema.select(names)
        return Table(schema, {n: self.columns[n] for n in names})

    def with_column(self, column: Column) -> "Table":
        """Return a table with one more column appended."""
        if column.name in self.columns:
            raise SchemaError(f"column {column.name!r} already exists")
        if self.schema.fields and len(column) != self.num_rows:
            raise SchemaError(
                f"column length {len(column)} != table length {self.num_rows}"
            )
        schema = self.schema.add(column.field)
        cols = dict(self.columns)
        cols[column.name] = column
        return Table(schema, cols)

    def drop(self, name: str) -> "Table":
        schema = self.schema.drop(name)
        cols = {n: c for n, c in self.columns.items() if n != name}
        return Table(schema, cols)

    def rename(self, mapping: dict[str, str]) -> "Table":
        schema = self.schema.rename(mapping)
        cols = {
            mapping.get(n, n): c.rename(mapping.get(n, n))
            for n, c in self.columns.items()
        }
        return Table(schema, cols)

    # ------------------------------------------------------------------
    # Table-level operations
    # ------------------------------------------------------------------
    def concat_rows(self, other: "Table") -> "Table":
        return Table.concat_all([self, other])

    @classmethod
    def concat_all(cls, tables: "list[Table]") -> "Table":
        """Vertically concatenate many same-schema tables at once.

        Each column is assembled with a single ``np.concatenate`` over all
        parts, so materializing ``n`` operator batches costs one copy of
        the data instead of the quadratic pairwise-concat chain.
        """
        if not tables:
            raise SchemaError("concat_all needs at least one table")
        first = tables[0]
        for other in tables[1:]:
            if other.schema.names != first.schema.names:
                raise SchemaError(
                    f"cannot concat tables with schemas {first.schema.names} "
                    f"and {other.schema.names}"
                )
        if len(tables) == 1:
            return first
        cols = {
            name: Column.concat_all([t.columns[name] for t in tables])
            for name in first.schema.names
        }
        return Table(first.schema, cols)

    def zip_columns(
        self, other: "Table", *, prefixes: tuple[str, str] = ("l_", "r_")
    ) -> "Table":
        """Horizontally combine equal-length tables (join materialization)."""
        if self.num_rows != other.num_rows:
            raise SchemaError(
                f"cannot zip tables of lengths {self.num_rows} and {other.num_rows}"
            )
        schema = self.schema.concat(other.schema, prefixes=prefixes)
        overlap = set(self.schema.names) & set(other.schema.names)
        cols: dict[str, Column] = {}
        for name in self.schema.names:
            out = prefixes[0] + name if name in overlap else name
            cols[out] = self.columns[name].rename(out)
        for name in other.schema.names:
            out = prefixes[1] + name if name in overlap else name
            cols[out] = other.columns[name].rename(out)
        return Table(schema, cols)

    def sort_by(self, name: str, *, descending: bool = False) -> "Table":
        col = self.column(name)
        if col.dtype in (DataType.STRING, DataType.CONTEXT):
            order = np.argsort(np.asarray([str(v) for v in col.data]), kind="stable")
        elif col.dtype is DataType.TENSOR:
            raise TypeMismatchError("cannot sort by a tensor column")
        else:
            order = np.argsort(col.data, kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{f.name}:{f.dtype.value}" + (f"[{f.dim}]" if f.dim else "")
            for f in self.schema
        )
        return f"Table({self.num_rows} rows; {cols})"
