"""Per-access-path circuit breakers feeding the physical planner.

A breaker guards one *access path* — keyed by
``(table, column, model, precision)`` for quantized scan paths and
``(table, column, model, "index")`` for index probes.  The planner asks
:meth:`BreakerRegistry.allow` before committing to a path; a tripped
breaker makes the path unavailable, and the planner falls back down its
chain (pq → int8 → fp32 scan; index → exact tensor scan).  Because the
fallback target is the *exact* path, breaker fallbacks never weaken the
exactness contract — they trade speed for availability, not accuracy.

State machine (classic three-state breaker):

* ``closed`` — healthy; failures increment a consecutive-failure count,
  and reaching ``threshold`` trips the breaker to ``open``;
* ``open`` — the path is excluded from planning (its cost is effectively
  infinite) until ``cooldown_s`` elapses;
* ``half_open`` — after the cooldown, exactly one trial request is let
  through: success closes the breaker, failure re-opens it (and restarts
  the cooldown).
"""

from __future__ import annotations

import threading
import time

from ..config import get_config
from ..obs.metrics import registry as _metrics

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


def _count_transition(to: str) -> None:
    """Publish one breaker state transition into the metrics registry.

    Transitions are rare (bounded by faults and cooldowns), so the
    get-or-create lookup is fine here; hot paths never reach this.
    """
    _metrics().counter("repro_breaker_transitions_total", to=to).inc()


class CircuitBreaker:
    """One access path's failure state (thread-safe)."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        *,
        clock=time.monotonic,
    ) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown_s = max(0.0, float(cooldown_s))
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trial_inflight = False
        self.trips = 0
        #: Recoveries: transitions back to ``closed`` from open/half-open.
        self.closes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request use this path right now?

        In ``open`` state, the first caller after the cooldown becomes
        the half-open trial; everyone else keeps getting ``False`` until
        the trial resolves.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            now = self._clock()
            if self._state == OPEN:
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._state = HALF_OPEN
                self._trial_inflight = True
                _count_transition(HALF_OPEN)
                return True
            # half_open: only the single in-flight trial is allowed.
            if self._trial_inflight:
                return False
            self._trial_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            recovered = self._state != CLOSED
            self._failures = 0
            self._state = CLOSED
            self._trial_inflight = False
            if recovered:
                self.closes += 1
                _count_transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or self._failures >= self.threshold:
                if self._state != OPEN:
                    self.trips += 1
                    _count_transition(OPEN)
                self._state = OPEN
                self._opened_at = self._clock()
                self._failures = 0
                self._trial_inflight = False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "trips": self.trips,
                "closes": self.closes,
            }


class BreakerRegistry:
    """All breakers of one process, keyed by access-path tuple."""

    def __init__(
        self,
        threshold: int | None = None,
        cooldown_s: float | None = None,
        *,
        clock=time.monotonic,
    ) -> None:
        config = get_config()
        self.threshold = (
            config.breaker_threshold if threshold is None else threshold
        )
        self.cooldown_s = (
            config.breaker_cooldown_s if cooldown_s is None else cooldown_s
        )
        self._clock = clock
        self._breakers: dict[tuple, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, key: tuple) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    self.threshold, self.cooldown_s, clock=self._clock
                )
            return breaker

    def allow(self, key: tuple) -> bool:
        return self.get(key).allow()

    def record_success(self, key: tuple) -> None:
        self.get(key).record_success()

    def record_failure(self, key: tuple) -> None:
        self.get(key).record_failure()

    def snapshot(self) -> dict:
        with self._lock:
            items = list(self._breakers.items())
        return {
            "/".join(str(part) for part in key): breaker.snapshot()
            for key, breaker in items
        }

    def open_count(self) -> int:
        with self._lock:
            items = list(self._breakers.values())
        return sum(1 for b in items if b.state != CLOSED)

    def reset(self) -> None:
        with self._lock:
            self._breakers.clear()


#: Process-wide registry; the planner and tests share it.
_registry: BreakerRegistry | None = None
_registry_lock = threading.Lock()


def breakers() -> BreakerRegistry:
    """The process-wide breaker registry (created lazily)."""
    global _registry
    with _registry_lock:
        if _registry is None:
            _registry = BreakerRegistry()
        return _registry


def reset_breakers() -> None:
    """Drop all breaker state (tests; config changes)."""
    global _registry
    with _registry_lock:
        _registry = None
