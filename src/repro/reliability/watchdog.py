"""Watchdog policy and event counters for worker self-healing.

The mechanism lives in :class:`~repro.engine.scheduler.WorkStealingScheduler`
(heartbeats, respawn, re-enqueue); this module holds the *policy* — how
long a silent worker is tolerated, how often to look, how many respawns
one run may consume — and the counters the health snapshot reports.

Two properties keep the watchdog (nearly) free when nothing is wrong:

* the scheduler's main thread blocks on a completion event, so a normal
  run wakes it exactly once — polling only happens while at least one
  worker is actually late;
* heartbeats are plain (unlocked) per-slot timestamp writes on the hot
  path; the watchdog reads them racily, which is safe because a stale
  read can only *delay* detection by one poll interval, never corrupt
  state.
"""

from __future__ import annotations

import threading

from ..config import get_config


class WatchdogPolicy:
    """Stall tolerance and respawn limits for one engine's runs."""

    __slots__ = ("stall_s", "max_respawns")

    def __init__(self, stall_s: float = 5.0, max_respawns: int = 8) -> None:
        self.stall_s = max(0.0, float(stall_s))
        self.max_respawns = max(0, int(max_respawns))

    @classmethod
    def from_config(cls) -> "WatchdogPolicy":
        return cls(get_config().watchdog_stall_s)

    @property
    def enabled(self) -> bool:
        """``REPRO_WATCHDOG_STALL_S=0`` disables stall detection."""
        return self.stall_s > 0.0

    @property
    def poll_s(self) -> float:
        """How often the scheduler re-checks heartbeats while waiting.

        A quarter of the stall tolerance (capped at 50 ms) gives the
        watchdog ≤1.25× detection latency without busy-waiting.
        """
        return min(self.stall_s / 4.0, 0.05) if self.enabled else 0.05


class WatchdogEvents:
    """Thread-safe counters for everything the watchdog did."""

    def __init__(self) -> None:
        self.stalls = 0
        self.worker_deaths = 0
        self.respawns = 0
        self.reenqueued = 0
        self._lock = threading.Lock()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "stalls": self.stalls,
                "worker_deaths": self.worker_deaths,
                "respawns": self.respawns,
                "reenqueued": self.reenqueued,
            }
