"""Typed retries with exponential backoff and decorrelated jitter.

The retry layer exists because morsels (and kernel calls, and store
builds) are *pure*: re-executing one after a transient failure produces
the bit-identical bytes the first attempt would have.  That makes retry
the cheapest reliability mechanism in the system — no checkpoints, no
idempotency tokens, just run it again.

Three guards keep retries from becoming a liability:

* **typing** — only :class:`~repro.errors.TransientError` subclasses are
  retried; permanent faults, planner bugs, and worker kills propagate on
  the first attempt;
* **budgets** — a per-query :class:`RetryBudget` caps the *total* number
  of re-executions a single query may consume across all its morsels, so
  a fault storm cannot multiply one query's work unboundedly;
* **deadlines** — a bound policy refuses to sleep past the ambient QoS
  deadline: a retry that cannot finish in time surfaces the original
  transient error immediately instead of burning the deadline asleep.

Backoff is AWS-style *decorrelated jitter*: each sleep is drawn
uniformly from ``[base, prev * 3]`` and clamped to ``cap``, which spreads
concurrent retriers apart (avoiding synchronized retry herds) while
keeping the expected backoff exponential.  The jitter stream is seeded,
so a chaos run's sleep schedule is reproducible.
"""

from __future__ import annotations

import random
import threading
import time

from ..config import get_config
from ..errors import TransientError


class RetryStats:
    """Thread-safe counters shared by every bound policy of one engine."""

    def __init__(self) -> None:
        self.attempts = 0
        self.retries = 0
        self.giveups = 0
        self.deadline_truncations = 0
        self.budget_exhausted = 0
        self._lock = threading.Lock()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "attempts": self.attempts,
                "retries": self.retries,
                "giveups": self.giveups,
                "deadline_truncations": self.deadline_truncations,
                "budget_exhausted": self.budget_exhausted,
            }


class RetryBudget:
    """A per-query cap on total re-executions (shared across morsels)."""

    __slots__ = ("_left", "_lock")

    def __init__(self, n: int) -> None:
        self._left = max(0, int(n))
        self._lock = threading.Lock()

    def take(self) -> bool:
        """Consume one retry token; ``False`` when the budget is spent."""
        with self._lock:
            if self._left <= 0:
                return False
            self._left -= 1
            return True

    @property
    def remaining(self) -> int:
        with self._lock:
            return self._left


class RetryPolicy:
    """Engine-wide retry parameters (bind per query before use).

    ``clock`` and ``sleep`` are injection points so the unit tests drive
    time with a fake clock — the suite never sleeps for real.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_s: float = 0.001,
        cap_s: float = 0.05,
        *,
        seed: int = 0,
        clock=time.monotonic,
        sleep=time.sleep,
        stats: RetryStats | None = None,
    ) -> None:
        self.max_attempts = max(1, int(max_attempts))
        self.base_s = max(0.0, float(base_s))
        self.cap_s = max(self.base_s, float(cap_s))
        self.seed = int(seed)
        self._clock = clock
        self._sleep = sleep
        self.stats = stats if stats is not None else RetryStats()

    @classmethod
    def from_config(cls) -> "RetryPolicy":
        config = get_config()
        return cls(
            config.retry_max_attempts,
            config.retry_base_ms / 1000.0,
            config.retry_cap_ms / 1000.0,
            seed=config.stream_seed("retry-jitter"),
        )

    def bind(
        self,
        *,
        deadline: float | None = None,
        budget: RetryBudget | None = None,
    ) -> "BoundRetry":
        """A per-query view: same knobs, plus deadline and budget."""
        return BoundRetry(self, deadline=deadline, budget=budget)


class BoundRetry:
    """One query's retry executor (thread-safe; workers share it)."""

    def __init__(
        self,
        policy: RetryPolicy,
        *,
        deadline: float | None = None,
        budget: RetryBudget | None = None,
    ) -> None:
        self.policy = policy
        self.deadline = deadline
        self.budget = budget
        self.local_retries = 0
        self._rng = random.Random(policy.seed)
        self._lock = threading.Lock()

    def _backoff(self, prev_s: float) -> float:
        """Decorrelated jitter: uniform over [base, prev*3], capped."""
        policy = self.policy
        with self._lock:
            hi = max(policy.base_s, min(policy.cap_s, prev_s * 3.0))
            return min(
                policy.cap_s, self._rng.uniform(policy.base_s, hi)
            )

    def call(self, fn):
        """Run ``fn()``; re-run on transient failure within the guards."""
        policy = self.policy
        stats = policy.stats
        prev_s = policy.base_s
        for attempt in range(1, policy.max_attempts + 1):
            with stats._lock:
                stats.attempts += 1
            try:
                return fn()
            except TransientError:
                if attempt >= policy.max_attempts:
                    with stats._lock:
                        stats.giveups += 1
                    raise
                if self.budget is not None and not self.budget.take():
                    with stats._lock:
                        stats.budget_exhausted += 1
                        stats.giveups += 1
                    raise
                backoff_s = self._backoff(prev_s)
                prev_s = backoff_s
                if (
                    self.deadline is not None
                    and policy._clock() + backoff_s > self.deadline
                ):
                    with stats._lock:
                        stats.deadline_truncations += 1
                        stats.giveups += 1
                    raise
                with stats._lock:
                    stats.retries += 1
                with self._lock:
                    self.local_retries += 1
                if backoff_s > 0.0:
                    policy._sleep(backoff_s)
        raise AssertionError("unreachable")  # pragma: no cover
