"""Deterministic, seedable fault injection (the chaos-testing substrate).

Every failure-hardened layer of the engine calls :func:`maybe_inject` at
its *injection site* — engine worker loops, BLAS kernel wrappers,
quantized-store builds, index probes, the service dispatcher.  With no
injector installed (the production default, ``REPRO_FAULT_RATE=0``) the
call is one module-global ``None`` check; with one installed, each site
hit consults a deterministic schedule:

* the decision for the *n*-th hit of a site is a pure function of
  ``(seed, site, n)`` — an integer hash thresholded against the fault
  rate — so a chaos run with a fixed seed injects the same fault count
  per site regardless of thread interleaving;
* the injected *kind* is drawn from the configured list: ``transient``
  (raise :class:`~repro.errors.TransientFault` — the retry layer's
  food), ``permanent`` (:class:`~repro.errors.PermanentFault` — trips
  circuit breakers), ``latency`` (sleep a spike), ``hang`` (block the
  calling worker long enough that the watchdog must route around it),
  and ``kill`` (:class:`~repro.errors.WorkerKilledFault` — an abrupt
  worker death only the watchdog recovers).

Exactness under injection is the point: faults only ever abort, delay,
or re-execute *pure* work (morsels, kernel calls, store builds), so a
service surviving a fault storm still returns bit-identical results.
"""

from __future__ import annotations

import threading
import time
import zlib

from ..config import get_config
from ..errors import PermanentFault, TransientFault, WorkerKilledFault

#: Every injection site wired into the engine and service layers.
SITES = (
    "engine.worker",
    "kernel.gemm",
    "kernel.rescore",
    "quant.build",
    "index.probe",
    "service.dispatch",
)

#: Fault kinds the injector can draw.
KINDS = ("transient", "permanent", "latency", "hang", "kill")


def _mix32(x: int) -> int:
    """Cheap deterministic 32-bit mix (xorshift-multiply)."""
    x &= 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x7FEB352D) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x846CA68B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


class FaultStats:
    """Counters for one injector's lifetime (read via :meth:`snapshot`)."""

    def __init__(self) -> None:
        self.checks = 0
        self.injected = 0
        self.by_site: dict[str, int] = {}
        self.by_kind: dict[str, int] = {}
        self._lock = threading.Lock()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "checks": self.checks,
                "injected": self.injected,
                "by_site": dict(self.by_site),
                "by_kind": dict(self.by_kind),
            }


class FaultInjector:
    """Seeded fault schedule over the named injection sites.

    Args:
        rate: per-site-hit injection probability in ``[0, 1]``.
        seed: schedule seed; equal seeds give equal per-site schedules.
        sites: iterable of site names to arm (``None``: every site).
        kinds: fault kinds to rotate through on injection.
        latency_s: duration of an injected latency spike.
        hang_s: duration of an injected hang (watchdog-bounded in
            practice; this is just the worst case).
        max_faults: hard cap on total injections (``None``: unbounded).
        sleep: clock hook for tests (defaults to ``time.sleep``).
    """

    def __init__(
        self,
        rate: float,
        *,
        seed: int = 0,
        sites=None,
        kinds=("transient",),
        latency_s: float = 0.001,
        hang_s: float = 30.0,
        max_faults: int | None = None,
        sleep=time.sleep,
    ) -> None:
        self.rate = min(1.0, max(0.0, float(rate)))
        self.seed = int(seed)
        self.sites = None if sites is None else frozenset(sites)
        kinds = tuple(kinds) or ("transient",)
        unknown = set(kinds) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds {sorted(unknown)}; have {KINDS}")
        self.kinds = kinds
        self.latency_s = max(0.0, float(latency_s))
        self.hang_s = max(0.0, float(hang_s))
        self.max_faults = max_faults
        self._sleep = sleep
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self.stats = FaultStats()

    @classmethod
    def from_config(cls) -> "FaultInjector | None":
        """Build from ``REPRO_FAULT_*`` knobs; ``None`` when rate is 0."""
        config = get_config()
        if config.fault_rate <= 0.0:
            return None
        sites = [s.strip() for s in config.fault_sites.split(",") if s.strip()]
        kinds = [k.strip() for k in config.fault_kinds.split(",") if k.strip()]
        seed = (
            config.stream_seed("fault-injector")
            if config.fault_seed is None
            else config.fault_seed
        )
        return cls(
            config.fault_rate,
            seed=seed,
            sites=sites or None,
            kinds=kinds or ("transient",),
            latency_s=config.fault_latency_ms / 1000.0,
            hang_s=config.fault_hang_s,
            max_faults=config.fault_max,
        )

    def decide(self, site: str) -> str | None:
        """The kind injected at this site hit, or ``None`` (pure w.r.t.
        the per-site hit counter: hit *n* of a site always decides the
        same way for a given seed)."""
        if self.sites is not None and site not in self.sites:
            return None
        with self._lock:
            n = self._counts.get(site, 0)
            self._counts[site] = n + 1
            with self.stats._lock:
                self.stats.checks += 1
                if (
                    self.max_faults is not None
                    and self.stats.injected >= self.max_faults
                ):
                    return None
        h = _mix32(self.seed ^ zlib.crc32(site.encode("utf-8")) ^ _mix32(n))
        if h / 2.0**32 >= self.rate:
            return None
        kind = self.kinds[_mix32(h ^ 0xA5A5A5A5) % len(self.kinds)]
        with self.stats._lock:
            self.stats.injected += 1
            self.stats.by_site[site] = self.stats.by_site.get(site, 0) + 1
            self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        return kind

    def hit(self, site: str) -> None:
        """Apply this site hit's scheduled fault (possibly none)."""
        kind = self.decide(site)
        if kind is None:
            return
        if kind == "latency":
            self._sleep(self.latency_s)
            return
        if kind == "hang":
            self._sleep(self.hang_s)
            return
        if kind == "kill":
            raise WorkerKilledFault(f"injected worker kill at {site}")
        if kind == "permanent":
            raise PermanentFault(f"injected permanent fault at {site}")
        raise TransientFault(f"injected transient fault at {site}")


#: The process-wide injector; ``None`` keeps every site a no-op.
_active: FaultInjector | None = None


def install_injector(injector: FaultInjector | None) -> FaultInjector | None:
    """Install (or clear, with ``None``) the process-wide injector."""
    global _active
    _active = injector
    return injector


def clear_injector() -> None:
    """Disarm every injection site."""
    install_injector(None)


def active_injector() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _active


def reload_from_config() -> FaultInjector | None:
    """Rebuild the process injector from the current config knobs."""
    return install_injector(FaultInjector.from_config())


def maybe_inject(site: str) -> None:
    """The per-site hook: free when no injector is installed."""
    injector = _active
    if injector is not None:
        injector.hit(site)


# Arm at import when the environment asks for it (the CI chaos shard
# exports REPRO_FAULT_RATE before pytest starts).
if get_config().fault_rate > 0.0:
    reload_from_config()
