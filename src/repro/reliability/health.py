"""Service health snapshot: one structure for every reliability signal.

:meth:`~repro.service.service.QueryService.health` assembles this from
the live components — breaker registry, engine retry stats, scheduler
watchdog counters, the active fault injector (if any), and the QoS
shed/degrade counters — so operators and the bench harness read one
coherent picture instead of five scattered snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ServiceHealth:
    """Point-in-time reliability state of a running service.

    Attributes:
        status: ``"ok"`` when no breaker is open and no worker died;
            ``"degraded"`` otherwise.  A degraded service still serves —
            the flag exists so load balancers and dashboards can see
            that some access paths are routing around failures.
        breakers: per-access-path breaker states (``key -> snapshot``).
        open_breakers: number of breakers not in the closed state.
        retries: engine retry counters (attempts/retries/giveups/...).
        watchdog: watchdog event counters (stalls/deaths/respawns/...).
        faults: active fault-injector stats (empty when disarmed).
        qos: shed/degrade/deadline counters from the QoS layer.
        service: completed/failed/shed counters from the service proper.
        shard: shard-process pool health (procs/alive/deaths/respawns);
            empty when sharded execution is disabled.
    """

    status: str = "ok"
    breakers: dict = field(default_factory=dict)
    open_breakers: int = 0
    retries: dict = field(default_factory=dict)
    watchdog: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)
    qos: dict = field(default_factory=dict)
    service: dict = field(default_factory=dict)
    shard: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "breakers": dict(self.breakers),
            "open_breakers": self.open_breakers,
            "retries": dict(self.retries),
            "watchdog": dict(self.watchdog),
            "faults": dict(self.faults),
            "qos": dict(self.qos),
            "service": dict(self.service),
            "shard": dict(self.shard),
        }
