"""Reliability layer: fault injection, retries, breakers, watchdog.

See ``docs/RELIABILITY.md`` for the fault model and the
exactness-under-retry argument.  The short version: morsels, kernel
calls, and store builds are pure, so every recovery mechanism here
(retry, re-enqueue, plan fallback to the exact path) preserves
bit-identical results — the layer trades latency for availability,
never accuracy.
"""

from .breaker import (
    BreakerRegistry,
    CircuitBreaker,
    breakers,
    reset_breakers,
)
from .faults import (
    KINDS,
    SITES,
    FaultInjector,
    active_injector,
    clear_injector,
    install_injector,
    maybe_inject,
    reload_from_config,
)
from .health import ServiceHealth
from .retry import BoundRetry, RetryBudget, RetryPolicy, RetryStats
from .runtime import current_deadline, current_retry_budget, deadline_scope
from .watchdog import WatchdogEvents, WatchdogPolicy

__all__ = [
    "KINDS",
    "SITES",
    "BoundRetry",
    "BreakerRegistry",
    "CircuitBreaker",
    "FaultInjector",
    "RetryBudget",
    "RetryPolicy",
    "RetryStats",
    "ServiceHealth",
    "WatchdogEvents",
    "WatchdogPolicy",
    "active_injector",
    "breakers",
    "clear_injector",
    "current_deadline",
    "current_retry_budget",
    "deadline_scope",
    "install_injector",
    "maybe_inject",
    "reload_from_config",
    "reset_breakers",
]
