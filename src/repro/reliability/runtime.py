"""Ambient per-thread reliability context.

The QoS layer knows a query's deadline; the engine's retry wrapper needs
it three layers down, inside a morsel re-execution decision.  Threading
a deadline parameter through the planner, operators, and kernels would
contaminate every signature for one scalar — so the service instead
opens a :func:`deadline_scope` around execution and the engine reads
:func:`current_deadline` when binding its retry policy.  This works
because the service executes queries on the submitting (caller) thread:
the scope set at dispatch is visible to everything the query runs.

Engine worker threads do *not* inherit the scope — they don't need to:
the deadline is captured once, at bind time, on the dispatching thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_local = threading.local()


@contextmanager
def deadline_scope(deadline: float | None, *, retry_budget=None):
    """Set the ambient absolute deadline (perf_counter clock) — and
    optionally a per-query :class:`~repro.reliability.retry.RetryBudget`
    shared by every engine run the query performs — for this thread for
    the duration of the block.  ``None`` is a valid scope and masks any
    outer deadline."""
    prev = getattr(_local, "deadline", None)
    prev_budget = getattr(_local, "retry_budget", None)
    _local.deadline = deadline
    _local.retry_budget = retry_budget
    try:
        yield
    finally:
        _local.deadline = prev
        _local.retry_budget = prev_budget


def current_deadline() -> float | None:
    """The ambient deadline of the calling thread, if any."""
    return getattr(_local, "deadline", None)


def current_retry_budget():
    """The ambient per-query retry budget of the calling thread, if any."""
    return getattr(_local, "retry_budget", None)
