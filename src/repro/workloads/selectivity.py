"""Selectivity-controlled relational workloads (Figures 15-17 setup).

The paper controls relational selectivity with "one relational attribute
column based on which we control the selectivity".  We reproduce that: a
uniform ``sel_attr`` in ``[0, 100)`` so the predicate ``sel_attr < s``
selects exactly ``s%`` of the rows in expectation (and, with the
permutation construction below, *exactly* ``floor(s% * n)`` rows).
"""

from __future__ import annotations

import numpy as np

from ..config import get_config
from ..errors import WorkloadError
from ..relational.expressions import Col, Expression
from ..relational.schema import DataType, Field, Schema
from ..relational.table import Table
from .synthetic import unit_vectors

#: Name of the selectivity-control attribute.
SEL_ATTR = "sel_attr"


def selectivity_values(
    n: int, *, stream: str = "selectivity", seed: int | None = None
) -> np.ndarray:
    """A permutation-based uniform attribute over [0, 100).

    Using a shuffled ``linspace`` (not IID uniforms) makes the predicate
    ``sel_attr < s`` select an exact fraction, which keeps the selectivity
    sweep noise-free at small scale.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    rng = (
        np.random.default_rng(seed)
        if seed is not None
        else get_config().rng(stream)
    )
    values = np.linspace(0.0, 100.0, num=n, endpoint=False)
    rng.shuffle(values)
    return values.astype(np.float64)


def vector_relation(
    n: int,
    dim: int,
    *,
    stream: str = "vector-relation",
    seed: int | None = None,
) -> Table:
    """A base relation: ``id | sel_attr | vec`` (Figures 15-17's 1M side)."""
    vectors = unit_vectors(n, dim, stream=stream + "/vec", seed=seed)
    schema = Schema.of(
        Field("id", DataType.INT64),
        Field(SEL_ATTR, DataType.FLOAT64),
        Field("vec", DataType.TENSOR, dim=dim),
    )
    return Table.from_arrays(
        schema,
        {
            "id": np.arange(n, dtype=np.int64),
            SEL_ATTR: selectivity_values(n, stream=stream + "/sel", seed=seed),
            "vec": vectors,
        },
    )


def selectivity_predicate(percent: float) -> Expression:
    """Predicate selecting ``percent``% of a :func:`vector_relation`."""
    if not 0.0 <= percent <= 100.0:
        raise WorkloadError(f"percent must be in [0, 100], got {percent}")
    return Col(SEL_ATTR) < float(percent)


def filter_bitmap(table: Table, percent: float) -> np.ndarray:
    """Boolean pre-filter bitmap for a ``percent``% selectivity."""
    return np.asarray(
        selectivity_predicate(percent).evaluate(table), dtype=bool
    )
