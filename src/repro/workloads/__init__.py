"""Seeded synthetic workload generators."""

from .selectivity import (
    SEL_ATTR,
    filter_bitmap,
    selectivity_predicate,
    selectivity_values,
    vector_relation,
)
from .strings import DirtyStringWorkload, generate_dirty_strings
from .synthetic import (
    clustered_vectors,
    embedding_like_vectors,
    paired_relations,
    random_vectors,
    unit_vectors,
)

__all__ = [
    "DirtyStringWorkload",
    "SEL_ATTR",
    "clustered_vectors",
    "embedding_like_vectors",
    "filter_bitmap",
    "generate_dirty_strings",
    "paired_relations",
    "random_vectors",
    "selectivity_predicate",
    "selectivity_values",
    "unit_vectors",
    "vector_relation",
]
