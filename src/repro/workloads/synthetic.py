"""Seeded synthetic vector workloads.

The paper's scalability experiments use synthetic in-memory data with a
fixed RNG seed (Section VI).  Generators here are deterministic per
(stream, parameters) and produce float32, GEMM-ready matrices.
"""

from __future__ import annotations

import numpy as np

from ..config import get_config
from ..errors import WorkloadError
from ..vector.norms import normalize_rows


def random_vectors(
    n: int, dim: int, *, stream: str = "vectors", seed: int | None = None
) -> np.ndarray:
    """IID standard-normal vectors, ``(n, dim)`` float32."""
    if n < 0 or dim <= 0:
        raise WorkloadError(f"invalid shape ({n}, {dim})")
    rng = (
        np.random.default_rng(seed)
        if seed is not None
        else get_config().rng(stream)
    )
    return rng.standard_normal((n, dim)).astype(np.float32)


def unit_vectors(
    n: int, dim: int, *, stream: str = "unit-vectors", seed: int | None = None
) -> np.ndarray:
    """Uniformly-distributed unit vectors (normalized Gaussians)."""
    return normalize_rows(random_vectors(n, dim, stream=stream, seed=seed))


def clustered_vectors(
    n: int,
    dim: int,
    *,
    n_clusters: int = 16,
    noise: float = 0.15,
    stream: str = "clustered",
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectors drawn around ``n_clusters`` random centroids.

    Returns ``(vectors, labels)``.  Intra-cluster cosine similarity is high
    (controlled by ``noise``), inter-cluster low — giving similarity joins
    a controllable, non-trivial match structure (real embeddings are
    clustered, not uniform).
    """
    if n_clusters < 1:
        raise WorkloadError(f"n_clusters must be >= 1, got {n_clusters}")
    if noise < 0:
        raise WorkloadError(f"noise must be >= 0, got {noise}")
    rng = (
        np.random.default_rng(seed)
        if seed is not None
        else get_config().rng(stream)
    )
    centroids = normalize_rows(
        rng.standard_normal((n_clusters, dim)).astype(np.float32)
    )
    labels = rng.integers(n_clusters, size=n)
    vectors = centroids[labels] + noise * rng.standard_normal(
        (n, dim)
    ).astype(np.float32)
    return normalize_rows(vectors), labels.astype(np.int64)


def embedding_like_vectors(
    n: int,
    dim: int,
    *,
    rank: int = 48,
    n_clusters: int = 128,
    noise: float = 0.25,
    spectrum_decay: float = 0.75,
    stream: str = "embedding-like",
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectors mimicking real embedding geometry: clustered, low-rank,
    power-law spectrum.

    Trained embeddings concentrate variance in a few leading directions
    (a decaying singular spectrum) and live near a low-dimensional,
    clustered manifold — exactly the structure product quantization
    exploits (a flat isotropic cloud is PQ's worst case: the quantization
    residual and the ranking signal are then the *same* noise).  Vectors
    are drawn around ``n_clusters`` centroids in a ``rank``-dimensional
    latent space whose axes are scaled ``(i + 1) ** -spectrum_decay``,
    then rotated into ``dim`` dimensions and unit-normalized.

    Returns ``(vectors, labels)``.
    """
    if not 1 <= rank <= dim:
        raise WorkloadError(f"rank must be in [1, {dim}], got {rank}")
    if n_clusters < 1:
        raise WorkloadError(f"n_clusters must be >= 1, got {n_clusters}")
    if noise < 0:
        raise WorkloadError(f"noise must be >= 0, got {noise}")
    rng = (
        np.random.default_rng(seed)
        if seed is not None
        else get_config().rng(stream)
    )
    spectrum = ((np.arange(rank) + 1.0) ** -spectrum_decay).astype(np.float32)
    centroids = normalize_rows(
        rng.standard_normal((n_clusters, rank)).astype(np.float32) * spectrum
    )
    labels = rng.integers(n_clusters, size=n)
    latent = centroids[labels] + (
        noise / np.sqrt(rank)
    ) * rng.standard_normal((n, rank)).astype(np.float32) * spectrum
    # Random orthonormal rotation embeds the latent manifold in dim-space.
    basis, _ = np.linalg.qr(rng.standard_normal((dim, rank)))
    return (
        normalize_rows(latent @ basis.T.astype(np.float32)),
        labels.astype(np.int64),
    )


def paired_relations(
    n_left: int,
    n_right: int,
    dim: int,
    *,
    overlap: float = 0.1,
    noise: float = 0.02,
    stream: str = "paired",
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, set[tuple[int, int]]]:
    """Two relations where a fraction of left rows have a near-duplicate
    in right (ground truth returned).

    Used by dedup / data-integration examples: ``overlap`` of the left rows
    are noisy copies of distinct right rows.
    """
    if not 0.0 <= overlap <= 1.0:
        raise WorkloadError(f"overlap must be in [0,1], got {overlap}")
    rng = (
        np.random.default_rng(seed)
        if seed is not None
        else get_config().rng(stream)
    )
    right = normalize_rows(
        rng.standard_normal((n_right, dim)).astype(np.float32)
    )
    left = normalize_rows(rng.standard_normal((n_left, dim)).astype(np.float32))
    n_dupes = int(round(overlap * n_left))
    truth: set[tuple[int, int]] = set()
    if n_dupes and n_right:
        left_ids = rng.choice(n_left, size=n_dupes, replace=False)
        right_ids = rng.choice(n_right, size=n_dupes, replace=n_dupes > n_right)
        for li, ri in zip(left_ids.tolist(), right_ids.tolist()):
            left[li] = right[ri] + noise * rng.standard_normal(dim).astype(
                np.float32
            )
            truth.add((int(li), int(ri)))
        left = normalize_rows(left)
    return left, right, truth
