"""Dirty-string workloads: online data cleaning and integration.

Section II-A-2 motivates joining string data that has "misspellings,
alternative spellings, synonyms, or different tenses" without prior
cleaning.  This generator produces two relations:

* a **clean** catalog relation of canonical words,
* a **dirty** feed relation whose strings are noisy variants (misspelled /
  pluralized / same-topic synonyms) of catalog entries,

plus the ground-truth mapping, so examples and tests can measure how well
an E-join recovers the integration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import get_config
from ..errors import WorkloadError
from ..embedding.corpus import DEFAULT_TOPICS, make_misspelling, pluralize
from ..relational.column import date_to_days
from ..relational.schema import DataType, Field, Schema
from ..relational.table import Table


@dataclass
class DirtyStringWorkload:
    """Generated tables plus ground truth."""

    catalog: Table     # id | word
    feed: Table        # id | text | day (DATE) | views
    #: feed row id -> catalog row id it was derived from.
    truth: dict[int, int]
    #: feed row id -> kind of corruption ("exact"|"misspelled"|"plural"|"synonym")
    kinds: dict[int, str]


def generate_dirty_strings(
    *,
    n_feed: int = 500,
    topics: dict[str, list[str]] | None = None,
    misspelling_rate: float = 0.3,
    plural_rate: float = 0.2,
    synonym_rate: float = 0.2,
    stream: str = "dirty-strings",
    seed: int | None = None,
) -> DirtyStringWorkload:
    """Build the catalog/feed pair with controllable corruption rates."""
    rates = misspelling_rate + plural_rate + synonym_rate
    if rates > 1.0:
        raise WorkloadError(
            f"corruption rates sum to {rates}, must be <= 1.0"
        )
    topics = dict(topics or DEFAULT_TOPICS)
    rng = (
        np.random.default_rng(seed)
        if seed is not None
        else get_config().rng(stream)
    )

    words: list[str] = []
    word_topic: list[str] = []
    for topic in sorted(topics):
        for w in topics[topic]:
            words.append(w)
            word_topic.append(topic)
    catalog_schema = Schema.of(
        Field("id", DataType.INT64), Field("word", DataType.STRING)
    )
    catalog = Table.from_arrays(
        catalog_schema,
        {"id": np.arange(len(words), dtype=np.int64), "word": words},
    )

    topic_members: dict[str, list[int]] = {}
    for idx, topic in enumerate(word_topic):
        topic_members.setdefault(topic, []).append(idx)

    texts: list[str] = []
    days: list[int] = []
    views: list[int] = []
    truth: dict[int, int] = {}
    kinds: dict[int, str] = {}
    base_day = date_to_days("2023-01-01")
    for feed_id in range(n_feed):
        src = int(rng.integers(len(words)))
        roll = float(rng.random())
        if roll < misspelling_rate:
            text = make_misspelling(words[src], rng)
            kind = "misspelled"
        elif roll < misspelling_rate + plural_rate:
            text = pluralize(words[src])
            kind = "plural"
        elif roll < misspelling_rate + plural_rate + synonym_rate:
            members = topic_members[word_topic[src]]
            other = members[int(rng.integers(len(members)))]
            text = words[other]
            src = other
            kind = "synonym"
        else:
            text = words[src]
            kind = "exact"
        texts.append(text)
        days.append(base_day + int(rng.integers(365)))
        views.append(int(rng.integers(1, 10_000)))
        truth[feed_id] = src
        kinds[feed_id] = kind

    feed_schema = Schema.of(
        Field("id", DataType.INT64),
        Field("text", DataType.STRING),
        Field("day", DataType.DATE),
        Field("views", DataType.INT64),
    )
    feed = Table.from_arrays(
        feed_schema,
        {
            "id": np.arange(n_feed, dtype=np.int64),
            "text": texts,
            "day": np.asarray(days, dtype=np.int64),
            "views": np.asarray(views, dtype=np.int64),
        },
    )
    return DirtyStringWorkload(catalog=catalog, feed=feed, truth=truth, kinds=kinds)
