"""EXPLAIN ANALYZE rendering: a human-readable tree from span data.

The service's ``submit(..., explain_analyze=True)`` forces a trace and
hands it here; the output is one line per span — name, wall and CPU
milliseconds, then the span's attributes (operator, rows, bytes scanned,
precision, cache/breaker/retry events) — indented as a tree under the
root ``query`` span.  Foreign spans appended by the coalescer leader
(the shared scan, this query's demux/rescore) render as children of the
root, where they executed from this query's point of view.
"""

from __future__ import annotations

from .trace import Span, Trace


def _format_attr(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return ",".join(_format_attr(v) for v in value) or "[]"
    return str(value)


def _attr_text(span: Span) -> str:
    if not span.attrs:
        return ""
    parts = [
        f"{key}={_format_attr(value)}"
        for key, value in span.attrs.items()
    ]
    return "  " + " ".join(parts)


def render_explain(trace: Trace) -> str:
    """The per-query EXPLAIN ANALYZE tree for a completed trace."""
    snapshot = trace.to_dict()
    spans = [
        Span(
            s["index"], s["parent"], s["name"],
            s["start_s"], s["wall_s"], s["cpu_s"], s["attrs"],
        )
        for s in snapshot["spans"]
    ]
    header = (
        f"EXPLAIN ANALYZE {trace.query_id} (tag={trace.tag}) "
        f"status={snapshot['status']}"
    )
    if snapshot["error"]:
        header += f" error={snapshot['error']}"
    lines = [header]
    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        if span.parent < 0:
            roots.append(span)
        else:
            children.setdefault(span.parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_s, s.index))

    name_width = max(len(s.name) for s in spans) + 2

    def line_for(span: Span, prefix: str, connector: str) -> str:
        timing = f"{span.wall_s * 1e3:9.3f} ms wall  {span.cpu_s * 1e3:8.3f} ms cpu"
        label = f"{prefix}{connector}{span.name}"
        return f"{label:<{name_width + 6}}{timing}{_attr_text(span)}"

    def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(line_for(span, prefix, connector))
        kids = children.get(span.index, [])
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1, False)

    for i, root in enumerate(sorted(roots, key=lambda s: (s.start_s, s.index))):
        walk(root, "", i == len(roots) - 1, True)
    return "\n".join(lines)
