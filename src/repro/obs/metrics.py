"""Process-wide metrics registry: counters, gauges, and log histograms.

The repo's telemetry grew as sixteen disconnected ``*Stats`` dataclasses;
this module gives them one place to land.  Three metric kinds cover what
a serving stack needs:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (adapter-published snapshots);
* :class:`Histogram` — log-bucketed (base-2) value distribution with
  interpolated p50/p95/p99, sized for latencies from a microsecond to
  hours in ~50 integer buckets.

Design constraints, in order: **lock-cheap** (each metric carries its own
small lock; the registry lock is only taken on get-or-create, and callers
cache hot metric handles), **thread-safe** (a service increments from
every client thread), and **always-on** (metrics never sample out — only
traces do).

The process-wide instance comes from :func:`registry`; tests isolate
themselves with :func:`reset_registry`.  Existing ``*Stats`` classes keep
their APIs and are published as gauges by :mod:`repro.obs.adapter`.
"""

from __future__ import annotations

import math
import threading

#: Bucket 0 lower bound for histograms: 1 microsecond (values in seconds).
HIST_MIN_VALUE = 1e-6
#: Bucket count: base-2 buckets from 1us cover up to ~2.2e8s (~7 years).
HIST_BUCKETS = 48


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonic event counter (thread-safe)."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (thread-safe; adapter snapshots land here)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Log-bucketed (base-2) histogram with interpolated percentiles.

    Bucket ``i`` covers ``[min_value * 2**i, min_value * 2**(i+1))``;
    values below ``min_value`` land in bucket 0, values beyond the last
    bound in the final bucket.  ``observe`` is O(1): a ``frexp`` plus one
    locked increment.  Percentiles interpolate linearly inside the
    bucket where the requested rank falls, clamped to the exact observed
    min/max so small samples stay tight.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "min_value",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: dict,
        *,
        min_value: float = HIST_MIN_VALUE,
        n_buckets: int = HIST_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.min_value = float(min_value)
        self._counts = [0] * max(1, int(n_buckets))
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def _bucket(self, value: float) -> int:
        if value < self.min_value:
            return 0
        # frexp(r) = (m, e) with r = m * 2**e, m in [0.5, 1): for r >= 1
        # floor(log2(r)) == e - 1, i.e. the base-2 bucket index.
        index = math.frexp(value / self.min_value)[1] - 1
        return min(index, len(self._counts) - 1)

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value or value < 0:  # NaN / negative: not a duration
            return
        # +inf clamps to the overflow bucket explicitly (frexp(inf) would
        # otherwise hand back a nonsense exponent).
        index = (
            len(self._counts) - 1 if math.isinf(value) else self._bucket(value)
        )
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, p: float) -> float | None:
        """Interpolated ``p``-th percentile (``p`` in [0, 100])."""
        with self._lock:
            if self._count == 0:
                return None
            rank = (min(100.0, max(0.0, p)) / 100.0) * self._count
            seen = 0
            for i, n in enumerate(self._counts):
                if n == 0:
                    continue
                if seen + n >= rank:
                    lo = self.min_value * (2.0**i) if i else 0.0
                    hi = self.min_value * (2.0 ** (i + 1))
                    frac = (rank - seen) / n
                    value = lo + (hi - lo) * frac
                    return min(self._max, max(self._min, value))
                seen += n
            return self._max

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create store of named (and optionally labelled) metrics.

    One metric identity is ``(name, sorted(labels))``; asking twice
    returns the same object, so call sites can either cache the handle
    (hot paths) or re-ask every time (cold paths).  Asking for an
    existing name with a different metric kind raises — one name, one
    kind, as Prometheus requires.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.Lock()

    def describe(self, name: str, text: str) -> None:
        """Attach a ``# HELP`` string to a metric name.

        Idempotent; the last description wins.  Metrics without one fall
        back to their class docstring's first line in the exposition.
        """
        with self._lock:
            self._help[name] = " ".join(str(text).split())

    def help_for(self, name: str) -> str | None:
        """The registered help string for ``name``, if any."""
        with self._lock:
            return self._help.get(name)

    def _get_or_create(self, cls, name: str, labels: dict):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                for (other_name, _), other in self._metrics.items():
                    if other_name == name and other.kind != cls.kind:
                        raise ValueError(
                            f"metric {name!r} already registered as "
                            f"{other.kind}, not {cls.kind}"
                        )
                metric = self._metrics[key] = cls(name, dict(labels))
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def iter_metrics(self):
        """Snapshot of metrics sorted by (name, labels) — stable output."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [metric for _, metric in items]

    def snapshot(self) -> dict:
        """``name{labels} -> value`` dict (histograms expand to a dict)."""
        out = {}
        for metric in self.iter_metrics():
            label_txt = ",".join(f"{k}={v}" for k, v in sorted(metric.labels.items()))
            key = f"{metric.name}{{{label_txt}}}" if label_txt else metric.name
            out[key] = (
                metric.snapshot()
                if isinstance(metric, Histogram)
                else metric.value
            )
        return out


#: Process-wide registry; every layer publishes into the same one.
_registry: MetricsRegistry | None = None
_registry_lock = threading.Lock()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (created lazily)."""
    global _registry
    with _registry_lock:
        if _registry is None:
            _registry = MetricsRegistry()
        return _registry


def reset_registry() -> None:
    """Drop every metric (tests; config changes)."""
    global _registry
    with _registry_lock:
        _registry = None
