"""Unified observability: metrics, tracing, EXPLAIN, flight recorder.

``repro.obs`` correlates what the sixteen per-layer ``*Stats`` classes
could only count in isolation:

* :mod:`~repro.obs.metrics` — process-wide :class:`MetricsRegistry`
  (counters, gauges, log-bucketed histograms with p50/p95/p99),
* :mod:`~repro.obs.trace` — span-based :class:`Tracer` with ambient
  :func:`query_scope` propagation (the ``deadline_scope`` pattern,
  generalized) and a bounded ring of recent traces,
* :mod:`~repro.obs.export` — Prometheus-style text exposition and
  JSON-lines trace dumps,
* :mod:`~repro.obs.explain` — the ``explain_analyze=True`` per-query
  span tree,
* :mod:`~repro.obs.adapter` — publishes the existing ``*Stats``
  snapshots into the registry without changing their APIs,
* :mod:`~repro.obs.capture` / :mod:`~repro.obs.replay` — the flight
  recorder: JSONL workload capture with result digests, and
  deterministic paced/closed replay verifying them bit-identical,
* :mod:`~repro.obs.critical_path` — per-trace self-time attribution and
  the bounded :class:`SlowQueryLog` behind ``service.slow_queries()``,
* :mod:`~repro.obs.server` — the stdlib HTTP introspection endpoint
  (``/metrics``, ``/health``, ``/traces``, ``/slow``).

Knobs: ``REPRO_OBS_ENABLED``, ``REPRO_OBS_SAMPLE``, ``REPRO_OBS_RING``,
``REPRO_OBS_SITES``, ``REPRO_OBS_CAPTURE``, ``REPRO_OBS_CAPTURE_MAX_MB``,
``REPRO_OBS_CAPTURE_KEEP``, ``REPRO_OBS_HTTP_PORT``, ``REPRO_OBS_SLOW_K``
(see ``docs/OBSERVABILITY.md``).
"""

from importlib import import_module

from .critical_path import SlowQueryLog, critical_path, summarize_trace
from .explain import render_explain
from .export import prometheus_text, traces_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
)
from .server import ObservabilityServer
from .trace import (
    Span,
    Trace,
    Tracer,
    current_trace,
    query_scope,
    span,
)

# capture/replay pull in the plan algebra, which is not importable while
# the core packages are still initializing — and ``repro.obs`` *is*
# imported that early (the breaker registry publishes metrics).  Lazy
# module-level attributes (PEP 562) break the cycle without making
# callers spell out submodules.
_LAZY = {
    "UnsupportedPlanError": ".capture",
    "WorkloadRecorder": ".capture",
    "load_workload": ".capture",
    "plan_from_dict": ".capture",
    "plan_to_dict": ".capture",
    "result_digest": ".capture",
    "WorkloadReplayer": ".replay",
    "replay_workload": ".replay",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(target, __name__), name)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityServer",
    "SlowQueryLog",
    "Span",
    "Trace",
    "Tracer",
    "UnsupportedPlanError",
    "WorkloadRecorder",
    "WorkloadReplayer",
    "critical_path",
    "current_trace",
    "load_workload",
    "plan_from_dict",
    "plan_to_dict",
    "prometheus_text",
    "query_scope",
    "registry",
    "render_explain",
    "replay_workload",
    "reset_registry",
    "result_digest",
    "span",
    "summarize_trace",
    "traces_jsonl",
]
