"""Unified observability: metrics registry, per-query tracing, EXPLAIN.

``repro.obs`` correlates what the sixteen per-layer ``*Stats`` classes
could only count in isolation:

* :mod:`~repro.obs.metrics` — process-wide :class:`MetricsRegistry`
  (counters, gauges, log-bucketed histograms with p50/p95/p99),
* :mod:`~repro.obs.trace` — span-based :class:`Tracer` with ambient
  :func:`query_scope` propagation (the ``deadline_scope`` pattern,
  generalized) and a bounded ring of recent traces,
* :mod:`~repro.obs.export` — Prometheus-style text exposition and
  JSON-lines trace dumps,
* :mod:`~repro.obs.explain` — the ``explain_analyze=True`` per-query
  span tree,
* :mod:`~repro.obs.adapter` — publishes the existing ``*Stats``
  snapshots into the registry without changing their APIs.

Knobs: ``REPRO_OBS_ENABLED``, ``REPRO_OBS_SAMPLE``, ``REPRO_OBS_RING``,
``REPRO_OBS_SITES`` (see ``docs/OBSERVABILITY.md``).
"""

from .explain import render_explain
from .export import prometheus_text, traces_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
)
from .trace import (
    Span,
    Trace,
    Tracer,
    current_trace,
    query_scope,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "current_trace",
    "prometheus_text",
    "query_scope",
    "registry",
    "render_explain",
    "reset_registry",
    "span",
    "traces_jsonl",
]
