"""Exporters: Prometheus-style text exposition and JSON-lines traces.

Both formats are plain strings so they can go to a file, a socket, or a
test assertion without any transport dependency:

* :func:`prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
  in the text exposition format (``# HELP``/``# TYPE`` headers, ``name{labels} value``
  samples; histograms expose ``_count``/``_sum`` plus ``quantile``-labelled
  samples, summary-style);
* :func:`traces_jsonl` renders traces one JSON object per line — the
  shape trace viewers and ad hoc ``jq`` pipelines both want.
"""

from __future__ import annotations

import json
import math

from .metrics import Histogram, MetricsRegistry


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _help_escape(value: str) -> str:
    # HELP text escapes backslash and newline only (no quotes), per the
    # exposition format.
    return str(value).replace("\\", "\\\\").replace("\n", "\\n")


def _help_text(registry: MetricsRegistry, metric) -> str:
    """Help string for a metric: registered description, else the first
    line of the metric class's docstring."""
    text = registry.help_for(metric.name)
    if not text:
        doc = type(metric).__doc__ or ""
        text = doc.strip().splitlines()[0] if doc.strip() else metric.kind
    return _help_escape(text)


def _label_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Text exposition of every metric in ``registry`` (stable order)."""
    lines: list[str] = []
    typed: set[str] = set()
    for metric in registry.iter_metrics():
        if metric.name not in typed:
            typed.add(metric.name)
            # Histograms export quantiles, so they type as "summary".
            kind = "summary" if metric.kind == "histogram" else metric.kind
            lines.append(f"# HELP {metric.name} {_help_text(registry, metric)}")
            lines.append(f"# TYPE {metric.name} {kind}")
        if isinstance(metric, Histogram):
            snap = metric.snapshot()
            labels = metric.labels
            lines.append(
                f"{metric.name}_count{_label_text(labels)} {snap['count']}"
            )
            lines.append(
                f"{metric.name}_sum{_label_text(labels)} "
                f"{_format_value(snap['sum'])}"
            )
            for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                lines.append(
                    f"{metric.name}"
                    f"{_label_text(labels, {'quantile': q_label})} "
                    f"{_format_value(snap[q_key])}"
                )
        else:
            lines.append(
                f"{metric.name}{_label_text(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _ordered_trace_dict(trace) -> dict:
    """``to_dict`` with spans in deterministic ``(start_s, index)`` order.

    Shard workers report spans asynchronously, so recording order is not
    reproducible across runs; sorting here keeps exported JSONL stable.
    Parent references use each span's ``index`` field (not its list
    position), so reordering does not corrupt the tree — see
    :mod:`repro.obs.critical_path`.
    """
    data = dict(trace.to_dict() if not isinstance(trace, dict) else trace)
    spans = list(data.get("spans", ()))
    data["spans"] = sorted(
        spans,
        key=lambda s: (s.get("start_s") or 0.0, int(s.get("index", 0))),
    )
    return data


def traces_jsonl(traces) -> str:
    """One JSON object per line for each trace (oldest first)."""
    lines = [
        json.dumps(_ordered_trace_dict(trace), sort_keys=True, default=str)
        for trace in traces
    ]
    return "\n".join(lines) + ("\n" if lines else "")
