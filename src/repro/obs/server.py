"""Live introspection endpoint: a stdlib HTTP server over one service.

A :class:`ObservabilityServer` runs a ``ThreadingHTTPServer`` on a
daemon thread and answers four GET routes from the service's existing
read-side APIs — no new state, no write paths:

========== ============================================= ==================
route      body                                          content type
========== ============================================= ==================
/metrics   Prometheus text exposition (HELP+TYPE)        text/plain; version=0.0.4
/health    ``ServiceHealth.as_dict()``                   application/json
/traces    trace ring, one JSON object per line          application/x-ndjson
/slow      slow-query log entries, slowest first         application/json
========== ============================================= ==================

Binding to port 0 (the default) picks a free port, which tests and
examples read back from :attr:`ObservabilityServer.port`.  The handler
holds only a weak-ish reference through the server object; closing the
server (or shutting the service down) stops the thread.  Scrapes run
concurrently with query traffic by construction — every API they call is
already thread-safe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Prometheus text exposition content type.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The service is attached to the *server* object by ObservabilityServer.
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.repro_service  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = service.metrics().encode("utf-8")
                ctype = METRICS_CONTENT_TYPE
            elif path == "/health":
                body = json.dumps(
                    service.health().as_dict(), sort_keys=True
                ).encode("utf-8")
                ctype = "application/json"
            elif path == "/traces":
                body = service.traces_jsonl().encode("utf-8")
                ctype = "application/x-ndjson"
            elif path == "/slow":
                body = json.dumps(
                    service.slow_queries(), sort_keys=True
                ).encode("utf-8")
                ctype = "application/json"
            else:
                self._respond(404, "text/plain", b"not found\n")
                return
        except Exception as exc:  # noqa: BLE001 - a scrape must not crash
            self._respond(
                500, "text/plain", f"{type(exc).__name__}: {exc}\n".encode()
            )
            return
        self._respond(200, ctype, body)

    def _respond(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:
        # Introspection scrapes should not spam the service's stderr.
        pass


class ObservabilityServer:
    """Background HTTP endpoint exposing one service's observability.

    Usable directly or via ``QueryService.serve_http()`` /
    ``obs_http_port``.  ``close()`` is idempotent and joins the serving
    thread.
    """

    def __init__(self, service, *, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.repro_service = service  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "ObservabilityServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
