"""Workload replay: the flight recorder's read side.

A :class:`WorkloadReplayer` takes a captured JSONL workload (a path or
pre-loaded records) and re-issues it against a fresh
:class:`~repro.service.service.QueryService`:

* **paced** mode reproduces the capture's inter-arrival gaps (optionally
  compressed by ``speed``), so queueing behaviour and tail latency are
  comparable run-to-run;
* **closed** mode ignores arrival times and has ``clients`` workers pull
  queries as fast as the service retires them — a throughput probe.

For every replayed query whose capture carried a digest, the replayer
digests the fresh result and compares bit-for-bit.  The run report pairs
the capture's latency/QPS numbers with the replay's, which is the
before/after comparison a perf-affecting change should publish.

Replay is *exact-path only* by default: captured QoS terms (deadline,
recall floor) are not re-applied, because a deadline raced against a
different machine's clock sheds different queries and destroys digest
comparability.  Pass ``apply_qos=True`` to rehearse shedding behaviour
instead of verifying results.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from ..bench.harness import latency_percentiles
from ..errors import ReproError
from .capture import load_workload, plan_from_dict, result_digest


class ReplayError(ReproError):
    """The workload cannot be replayed as requested."""


def _capture_summary(records: list[dict]) -> dict:
    """Latency/QPS summary of the *capture* side, from the log alone."""
    completed = [
        r for r in records if r["outcome"] == "completed" and r["latency_s"]
    ]
    latencies = [r["latency_s"] for r in completed]
    span_s = max((r["arrival_s"] for r in records), default=0.0)
    return {
        "queries": len(records),
        "completed": len(completed),
        "latency": latency_percentiles(latencies) if latencies else None,
        "qps": (len(records) / span_s) if span_s > 0 else None,
    }


class WorkloadReplayer:
    """Deterministically re-issue a captured workload against a service."""

    def __init__(
        self,
        workload: str | Path | list[dict],
        *,
        mode: str = "paced",
        speed: float = 1.0,
        clients: int = 16,
        apply_qos: bool = False,
    ) -> None:
        if mode not in ("paced", "closed"):
            raise ReplayError(f"unknown replay mode {mode!r}")
        if speed <= 0:
            raise ReplayError("replay speed must be positive")
        records = (
            workload
            if isinstance(workload, list)
            else load_workload(workload)
        )
        # Stable order: by capture arrival, ties by query id, so closed
        # mode is deterministic too.
        self.records = sorted(
            records, key=lambda r: (r["arrival_s"], str(r["query_id"]))
        )
        self.mode = mode
        self.speed = float(speed)
        self.clients = max(1, int(clients))
        self.apply_qos = bool(apply_qos)

    def run(self, service) -> dict:
        """Replay against ``service``; returns the comparison report.

        The report's ``ok`` is true iff no digest mismatched and nothing
        errored that completed in the capture.
        """
        replayable = [r for r in self.records if r["plan"] is not None]
        skipped_unsupported = len(self.records) - len(replayable)
        plans = [plan_from_dict(r["plan"]) for r in replayable]

        results: list[dict | None] = [None] * len(replayable)
        next_index = [0]
        index_lock = threading.Lock()
        t0 = time.perf_counter()

        def issue(i: int) -> None:
            record = replayable[i]
            if self.mode == "paced":
                target = record["arrival_s"] / self.speed
                delay = target - (time.perf_counter() - t0)
                if delay > 0:
                    time.sleep(delay)
            start = time.perf_counter()
            outcome: dict = {"query_id": record["query_id"]}
            try:
                if self.apply_qos:
                    response = service.submit_qos(
                        plans[i],
                        deadline_s=record["deadline_s"],
                        priority=record["priority"] or 0,
                        min_recall=(
                            1.0
                            if record["min_recall"] is None
                            else record["min_recall"]
                        ),
                        tag=record["tag"],
                    )
                else:
                    # Exact path: no deadline, recall floor 1.0, so every
                    # replayed result is digest-comparable.
                    response = service.submit_qos(
                        plans[i], min_recall=1.0, tag=record["tag"]
                    )
            except Exception as exc:  # noqa: BLE001 - tallied per query
                outcome["error"] = f"{type(exc).__name__}: {exc}"
                outcome["latency_s"] = time.perf_counter() - start
            else:
                outcome["latency_s"] = time.perf_counter() - start
                outcome["degraded"] = response.degraded
                if not response.degraded:
                    outcome["digest"] = result_digest(response.table)
            results[i] = outcome

        def worker() -> None:
            while True:
                with index_lock:
                    i = next_index[0]
                    if i >= len(replayable):
                        return
                    next_index[0] = i + 1
                issue(i)

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(min(self.clients, max(1, len(replayable))))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

        matched = mismatched = unverifiable = errors = 0
        mismatches: list[dict] = []
        latencies: list[float] = []
        for record, outcome in zip(replayable, results):
            if outcome is None:
                continue
            if "latency_s" in outcome:
                latencies.append(outcome["latency_s"])
            if "error" in outcome:
                errors += 1
                if record["outcome"] == "completed" and len(mismatches) < 10:
                    mismatches.append(
                        {
                            "query_id": record["query_id"],
                            "kind": "error",
                            "captured": record["outcome"],
                            "replayed": outcome["error"],
                        }
                    )
                continue
            if record["digest"] is None or outcome.get("digest") is None:
                unverifiable += 1
                continue
            if record["digest"] == outcome["digest"]:
                matched += 1
            else:
                mismatched += 1
                if len(mismatches) < 10:
                    mismatches.append(
                        {
                            "query_id": record["query_id"],
                            "kind": "digest",
                            "captured": record["digest"],
                            "replayed": outcome["digest"],
                        }
                    )

        hard_errors = sum(
            1
            for record, outcome in zip(replayable, results)
            if outcome is not None
            and "error" in outcome
            and record["outcome"] == "completed"
        )
        return {
            "mode": self.mode,
            "speed": self.speed,
            "clients": self.clients,
            "apply_qos": self.apply_qos,
            "capture": _capture_summary(self.records),
            "replay": {
                "queries": len(replayable),
                "errors": errors,
                "latency": latency_percentiles(latencies) if latencies else None,
                "qps": (len(replayable) / wall) if wall > 0 else None,
                "wall_s": wall,
            },
            "digests": {
                "verified": matched + mismatched,
                "matched": matched,
                "mismatched": mismatched,
                "unverifiable": unverifiable,
                "skipped_unsupported": skipped_unsupported,
            },
            "mismatches": mismatches,
            "ok": mismatched == 0 and hard_errors == 0,
        }


def replay_workload(workload, service, **kwargs) -> dict:
    """One-call convenience: build a replayer and run it."""
    return WorkloadReplayer(workload, **kwargs).run(service)
