"""Workload capture: the flight recorder's write side.

A :class:`WorkloadRecorder` hangs off the query service and appends one
JSONL record per submission — the logical plan (in a replayable wire
form), the QoS terms, the arrival offset, the outcome, the latency, and
a stable SHA-256 digest of the result table.  A captured log is a
*replayable workload*: :mod:`repro.obs.replay` re-issues it against a
fresh service and checks the digests bit-for-bit, which is the
capture→replay→diff loop every perf-affecting change should close.

Design constraints, in order:

* **near-zero cost disabled** — the default.  With no capture path the
  service holds no recorder and each submission pays one ``None`` check;
* **cheap enabled** — one ``json.dumps`` plus one buffered write per
  query, under a lock only for the write itself.  The digest is a single
  pass over the result columns' bytes;
* **bounded on disk** — the file rotates once it exceeds
  ``obs_capture_max_mb`` (``path`` -> ``path.1`` -> ...), keeping at
  most ``obs_capture_keep`` rotated generations;
* **bit-exact round trips** — query vectors serialize as float lists
  (float32 -> float64 widening is exact, and Python's JSON repr of a
  float64 round-trips exactly), so a replayed query is *the same* query.

Plans that the wire format cannot express (similarity joins, arbitrary
filter expressions) are still recorded — outcome, latency, digest — with
``plan: null``; replay skips them and reports how many it skipped.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path

import numpy as np

from ..algebra.logical import (
    EmbedNode,
    ESelectNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
)
from ..config import get_config
from ..core.conditions import ThresholdCondition, TopKCondition
from ..errors import DeadlineExceededError, ReproError, ServiceOverloadError

#: Wire-format version stamped into every record.
CAPTURE_VERSION = 1


class UnsupportedPlanError(ReproError):
    """The plan contains a node the capture wire format cannot express."""


# ----------------------------------------------------------------------
# Plan wire format
# ----------------------------------------------------------------------
def _encode_query(query) -> dict | str:
    if isinstance(query, np.ndarray):
        return {
            "__ndarray__": [float(v) for v in np.ravel(query)],
            "dtype": str(query.dtype),
            "shape": list(query.shape),
        }
    if isinstance(query, str):
        return query
    raise UnsupportedPlanError(
        f"cannot serialize query value of type {type(query).__name__}"
    )


def _decode_query(encoded):
    if isinstance(encoded, dict) and "__ndarray__" in encoded:
        return np.asarray(
            encoded["__ndarray__"], dtype=np.dtype(encoded["dtype"])
        ).reshape(tuple(encoded["shape"]))
    return encoded


def _encode_condition(condition) -> dict:
    if isinstance(condition, ThresholdCondition):
        return {"kind": "threshold", "threshold": float(condition.threshold)}
    if isinstance(condition, TopKCondition):
        return {
            "kind": "topk",
            "k": int(condition.k),
            "min_similarity": (
                None
                if condition.min_similarity is None
                else float(condition.min_similarity)
            ),
        }
    raise UnsupportedPlanError(
        f"cannot serialize condition {type(condition).__name__}"
    )


def _decode_condition(encoded: dict):
    if encoded["kind"] == "threshold":
        return ThresholdCondition(encoded["threshold"])
    return TopKCondition(encoded["k"], min_similarity=encoded["min_similarity"])


def plan_to_dict(node: LogicalNode) -> dict:
    """Serialize a logical plan to the capture wire format.

    Covers the serving shapes (``Scan``, ``ESelect``, ``Embed``,
    ``Project``, ``Limit``); raises :class:`UnsupportedPlanError` for
    anything else — callers record such queries with ``plan: null``.
    """
    if isinstance(node, ScanNode):
        return {"op": "scan", "table": node.table_name}
    if isinstance(node, ESelectNode):
        return {
            "op": "eselect",
            "child": plan_to_dict(node.child),
            "column": node.column,
            "query": _encode_query(node.query),
            "model": node.model_name,
            "condition": _encode_condition(node.condition),
            "score_column": node.score_column,
        }
    if isinstance(node, EmbedNode):
        return {
            "op": "embed",
            "child": plan_to_dict(node.child),
            "column": node.column,
            "model": node.model_name,
            "output": node.output_column,
        }
    if isinstance(node, ProjectNode):
        return {
            "op": "project",
            "child": plan_to_dict(node.child),
            "names": list(node.names),
        }
    if isinstance(node, LimitNode):
        return {"op": "limit", "child": plan_to_dict(node.child), "n": node.n}
    raise UnsupportedPlanError(
        f"plan node {type(node).__name__} is not capturable"
    )


def plan_from_dict(encoded: dict) -> LogicalNode:
    """Rebuild a logical plan from its wire form (inverse of
    :func:`plan_to_dict`)."""
    op = encoded["op"]
    if op == "scan":
        return ScanNode(encoded["table"])
    if op not in ("eselect", "embed", "project", "limit"):
        raise UnsupportedPlanError(f"unknown plan op {op!r}")
    child = plan_from_dict(encoded["child"])
    if op == "eselect":
        return ESelectNode(
            child,
            encoded["column"],
            _decode_query(encoded["query"]),
            encoded["model"],
            _decode_condition(encoded["condition"]),
            encoded["score_column"],
        )
    if op == "embed":
        return EmbedNode(
            child, encoded["column"], encoded["model"], encoded["output"]
        )
    if op == "project":
        return ProjectNode(child, tuple(encoded["names"]))
    if op == "limit":
        return LimitNode(child, encoded["n"])
    raise UnsupportedPlanError(f"unknown plan op {op!r}")


# ----------------------------------------------------------------------
# Result digests
# ----------------------------------------------------------------------
def result_digest(table) -> str:
    """Stable SHA-256 digest of a result table (schema + column bytes).

    Two tables digest equal iff they have the same column names, types,
    row order, and bit-identical values — exactly the service's
    exactness contract, so capture and replay can compare results across
    processes without shipping the tables themselves.
    """
    h = hashlib.sha256()
    for field in table.schema:
        column = table.columns[field.name]
        arr = np.ascontiguousarray(column.data)
        h.update(field.name.encode("utf-8"))
        h.update(str(field.dtype).encode("utf-8"))
        if arr.dtype.kind == "O":
            # Object columns (decoded strings, dates): canonical JSON.
            h.update(b"O")
            h.update(
                json.dumps(arr.tolist(), default=str).encode("utf-8")
            )
        else:
            h.update(str(arr.dtype).encode("utf-8"))
            h.update(str(arr.shape).encode("utf-8"))
            h.update(arr.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# The recorder
# ----------------------------------------------------------------------
def _classify_outcome(error: BaseException | None) -> str:
    if error is None:
        return "completed"
    if isinstance(error, DeadlineExceededError):
        return "shed"
    if isinstance(error, ServiceOverloadError):
        return "rejected"
    return "failed"


class WorkloadRecorder:
    """Append-only JSONL workload capture with size-bounded rotation.

    Every knob defaults to the ``REPRO_OBS_CAPTURE*`` configuration.
    The recorder's clock starts at construction; each record's
    ``arrival_s`` is the submission's offset on that clock, which is
    what paced replay uses to reproduce the original inter-arrival gaps.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int | None = None,
        keep: int | None = None,
    ) -> None:
        config = get_config()
        self.path = Path(path)
        self.max_bytes = (
            int(config.obs_capture_max_mb * 2**20)
            if max_bytes is None
            else int(max_bytes)
        )
        self.keep = config.obs_capture_keep if keep is None else int(keep)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = self.path.stat().st_size
        self._closed = False
        self.records = 0
        self.unsupported_plans = 0
        self.rotations = 0

    def offset(self) -> float:
        """Seconds since the recorder started (the arrival clock)."""
        return time.perf_counter() - self._t0

    def record(
        self,
        *,
        plan,
        tag: str,
        query_id: str,
        arrival_s: float,
        deadline_s: float | None = None,
        priority: int = 0,
        min_recall: float | None = None,
        response=None,
        error: BaseException | None = None,
    ) -> dict | None:
        """Append one submission's record; returns it (``None`` if closed).

        ``response`` is the :class:`~repro.service.qos.QueryResponse` on
        success; ``error`` the raised exception otherwise.  Degraded
        responses are recorded without a digest — an approximate result
        is not a replay baseline.
        """
        if self._closed:
            return None
        try:
            plan_dict = plan_to_dict(plan)
        except UnsupportedPlanError:
            plan_dict = None
            self.unsupported_plans += 1
        outcome = _classify_outcome(error)
        record = {
            "v": CAPTURE_VERSION,
            "query_id": query_id,
            "tag": tag,
            "arrival_s": round(float(arrival_s), 9),
            "deadline_s": deadline_s,
            "priority": priority,
            "min_recall": min_recall,
            "plan": plan_dict,
            "outcome": outcome,
            "error": None if error is None else f"{type(error).__name__}: {error}",
            "latency_s": None,
            "degraded": False,
            "cache_hit": False,
            "precision": None,
            "digest": None,
        }
        if response is not None:
            record["latency_s"] = round(float(response.latency_s), 9)
            record["degraded"] = bool(response.degraded)
            record["cache_hit"] = bool(response.cache_hit)
            record["precision"] = response.precision
            if not response.degraded:
                record["digest"] = result_digest(response.table)
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._closed:
                return None
            self._file.write(line)
            self._file.flush()
            self._size += len(line.encode("utf-8"))
            self.records += 1
            if self._size > self.max_bytes:
                self._rotate_locked()
        return record

    def _rotate_locked(self) -> None:
        """Rotate ``path`` -> ``path.1`` -> ... (call with the lock held)."""
        self._file.close()
        # Drop the oldest generation, then shift the rest up by one.
        oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
        oldest.unlink(missing_ok=True)
        for i in range(self.keep - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
        if self.keep > 0:
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        else:
            self.path.unlink(missing_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def stats_snapshot(self) -> dict:
        with self._lock:
            return {
                "records": self.records,
                "unsupported_plans": self.unsupported_plans,
                "rotations": self.rotations,
                "bytes": self._size,
            }


def load_workload(path: str | Path) -> list[dict]:
    """Parse a captured JSONL workload file into record dicts."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
