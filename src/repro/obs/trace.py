"""Span-based per-query tracing with ambient context propagation.

This generalizes the ``deadline_scope`` pattern from
:mod:`repro.reliability.runtime`: the service opens a :func:`query_scope`
around execution, and every layer below — plan cache, coalescer, engine,
physical planner — calls :func:`span` without any parameter threading.
It works for the same reason the deadline scope does: the service
executes queries on the submitting (caller) thread, so the scope set at
dispatch is visible to everything the query runs on that thread.

Two kinds of span cover the coalesced execution path:

* **owned spans** (:func:`span`) — opened and closed on the thread that
  owns the trace; they nest via a per-trace stack, carry wall *and*
  thread-CPU time, and attach attributes via ``handle.set(...)``;
* **foreign spans** (:meth:`Trace.add_span`) — completed spans appended
  by *another* thread, used by the coalescer leader to attribute the
  shared scan (and each follower's demux/rescore) to every member
  query's own trace.  The trace's internal lock makes this safe.

Cost when sampled out: :func:`span` reads one thread-local and returns a
shared no-op singleton — no allocation, no locking — so always-on
instrumentation stays near-free for the (default) 99% of untraced
queries.  Sampling itself reuses the deterministic counter-hash schedule
from the fault injector: the decision for the *n*-th submission is a
pure function of ``(seed, n)``, so a run with a pinned seed traces the
same submissions regardless of thread interleaving.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..config import get_config

_local = threading.local()


def _mix32(x: int) -> int:
    """Cheap deterministic 32-bit mix (same family as the fault injector)."""
    x &= 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x7FEB352D) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x846CA68B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


@dataclass
class Span:
    """One timed region of a query's execution.

    ``index`` is the span's position in the trace (pre-order for owned
    spans); ``parent`` is the index of the enclosing span, ``-1`` for the
    root.  ``start_s`` is seconds since the trace started; ``cpu_s`` is
    thread CPU time, so ``wall_s - cpu_s`` exposes blocking (queue wait,
    coalesce gather, lock contention).
    """

    index: int
    parent: int
    name: str
    start_s: float
    wall_s: float = 0.0
    cpu_s: float = 0.0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "parent": self.parent,
            "name": self.name,
            "start_s": round(self.start_s, 9),
            "wall_s": round(self.wall_s, 9),
            "cpu_s": round(self.cpu_s, 9),
            "attrs": self.attrs,
        }


class Trace:
    """All spans of one traced query, plus its identity and outcome."""

    __slots__ = (
        "query_id",
        "tag",
        "status",
        "error",
        "started_at",
        "spans",
        "_t0",
        "_stack",
        "_lock",
        "_sites",
    )

    def __init__(
        self, query_id: str, tag: str, *, sites: frozenset | None = None
    ) -> None:
        self.query_id = query_id
        self.tag = tag
        self.status = "running"
        self.error: str | None = None
        #: Wall-clock epoch seconds (for dumps); span math uses perf_counter.
        self.started_at = time.time()
        self.spans: list[Span] = []
        self._t0 = time.perf_counter()
        self._stack = [-1]
        self._lock = threading.Lock()
        self._sites = sites

    def allows(self, name: str) -> bool:
        """Site gating: record ``site.detail`` spans iff ``site`` is enabled."""
        if self._sites is None:
            return True
        return name.split(".", 1)[0] in self._sites

    def add_span(
        self, name: str, *, wall_s: float, cpu_s: float = 0.0, **attrs
    ) -> int | None:
        """Append a completed span from a foreign thread (coalescer leader).

        The span is parented at the root and stamped as ending "now" on
        the trace's clock, so explain trees show where the shared work
        landed inside this query's timeline.
        """
        if not self.allows(name):
            return None
        end_s = time.perf_counter() - self._t0
        with self._lock:
            index = len(self.spans)
            parent = 0 if self.spans else -1
            self.spans.append(
                Span(
                    index,
                    parent,
                    name,
                    max(0.0, end_s - wall_s),
                    wall_s,
                    cpu_s,
                    dict(attrs),
                )
            )
        return index

    @property
    def wall_s(self) -> float:
        """Total traced wall time (the root span's, once closed)."""
        with self._lock:
            return self.spans[0].wall_s if self.spans else 0.0

    def find(self, name: str) -> list[Span]:
        """All spans with the given name (test/debug convenience)."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def to_dict(self) -> dict:
        with self._lock:
            spans = [s.to_dict() for s in self.spans]
        # Absolute wall-clock anchor per span: dumps from different
        # processes share no perf_counter origin, but started_at is epoch
        # time, so started_at + start_s time-aligns them during replay
        # analysis.
        for span_dict in spans:
            span_dict["start_at"] = round(
                self.started_at + span_dict["start_s"], 6
            )
        return {
            "query_id": self.query_id,
            "tag": self.tag,
            "status": self.status,
            "error": self.error,
            "started_at": self.started_at,
            "wall_s": spans[0]["wall_s"] if spans else 0.0,
            "spans": spans,
        }


class _NullSpan:
    """Shared no-op handle returned when tracing is off / sampled out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager recording one owned span on the ambient trace."""

    __slots__ = ("_trace", "_span", "_t0", "_c0")

    def __init__(self, trace: Trace, name: str, attrs: dict) -> None:
        self._trace = trace
        self._span = Span(0, -1, name, 0.0, attrs=attrs)

    def __enter__(self) -> "_SpanHandle":
        trace = self._trace
        span_ = self._span
        with trace._lock:
            span_.index = len(trace.spans)
            span_.parent = trace._stack[-1]
            span_.start_s = time.perf_counter() - trace._t0
            trace.spans.append(span_)
            trace._stack.append(span_.index)
        self._t0 = time.perf_counter()
        self._c0 = time.thread_time()
        return self

    def set(self, **attrs) -> "_SpanHandle":
        self._span.attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.wall_s = time.perf_counter() - self._t0
        self._span.cpu_s = time.thread_time() - self._c0
        if exc is not None:
            self._span.attrs.setdefault(
                "error", f"{exc_type.__name__}: {exc}"
            )
        trace = self._trace
        with trace._lock:
            if trace._stack and trace._stack[-1] == self._span.index:
                trace._stack.pop()
        return False


def span(name: str, **attrs):
    """A timed span on the calling thread's ambient trace.

    Returns a context manager; with no trace in scope (or the span's site
    gated off) it is a shared no-op singleton, so instrumentation sites
    cost one thread-local read when sampled out.
    """
    trace = getattr(_local, "trace", None)
    if trace is None or not trace.allows(name):
        return _NULL_SPAN
    return _SpanHandle(trace, name, attrs)


def current_trace() -> Trace | None:
    """The ambient trace of the calling thread, if any."""
    return getattr(_local, "trace", None)


@contextmanager
def query_scope(trace: Trace | None):
    """Make ``trace`` ambient for this thread and open its root span.

    ``None`` is a valid (and the common) scope: it masks any outer trace
    and makes every :func:`span` call below a no-op.  On exit the trace's
    ``status`` is resolved to ``"ok"`` or ``"failed"`` (with the error
    recorded) unless the body already set something more specific.
    """
    prev = getattr(_local, "trace", None)
    _local.trace = trace
    if trace is None:
        try:
            yield None
        finally:
            _local.trace = prev
        return
    try:
        with _SpanHandle(trace, "query", {}):
            yield trace
        if trace.status == "running":
            trace.status = "ok"
    except BaseException as exc:
        trace.status = "failed"
        trace.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _local.trace = prev


def parse_sites(raw) -> frozenset | None:
    """Normalize a sites spec (comma string or iterable) to a frozenset.

    Empty (the default) means "every site" and maps to ``None``.
    """
    if raw is None:
        return None
    if isinstance(raw, str):
        parts = [part.strip() for part in raw.split(",")]
    else:
        parts = [str(part).strip() for part in raw]
    sites = frozenset(part for part in parts if part)
    return sites or None


class Tracer:
    """Sampling decisions plus the bounded ring of completed traces.

    Every knob defaults to the ``REPRO_OBS_*`` configuration.  Sampling
    is deterministic: submission *n* is traced iff
    ``mix32(seed ^ n) < rate * 2**32`` — replay-identical for a pinned
    seed, uniformly spread for any rate.
    """

    def __init__(
        self,
        *,
        enabled: bool | None = None,
        sample_rate: float | None = None,
        ring_size: int | None = None,
        sites=None,
        seed: int | None = None,
    ) -> None:
        config = get_config()
        self.enabled = config.obs_enabled if enabled is None else bool(enabled)
        rate = config.obs_sample_rate if sample_rate is None else sample_rate
        self.sample_rate = min(1.0, max(0.0, float(rate)))
        size = config.obs_ring_size if ring_size is None else ring_size
        self.ring: deque[Trace] = deque(maxlen=max(1, int(size)))
        self.sites = parse_sites(config.obs_sites if sites is None else sites)
        self.seed = (
            config.stream_seed("obs.sampler") if seed is None else int(seed)
        )
        self._threshold = int(self.sample_rate * 0x100000000)
        self._n = 0
        self._lock = threading.Lock()
        #: Submissions that were considered / actually traced.
        self.considered = 0
        self.sampled = 0

    def maybe_trace(
        self, query_id: str, tag: str, *, force: bool = False
    ) -> Trace | None:
        """A new :class:`Trace` if this submission should be traced.

        ``force`` (the ``explain_analyze`` path) bypasses sampling but
        still honours site gating.
        """
        if not force:
            if not self.enabled or self._threshold <= 0:
                return None
            with self._lock:
                n = self._n
                self._n += 1
                self.considered += 1
                if _mix32(self.seed ^ n) >= self._threshold:
                    return None
                self.sampled += 1
        return Trace(query_id, tag, sites=self.sites)

    def record(self, trace: Trace) -> None:
        """Retire a completed trace into the ring (oldest evicted)."""
        self.ring.append(trace)

    def recent(self) -> list[Trace]:
        """Retained traces, oldest first."""
        return list(self.ring)
