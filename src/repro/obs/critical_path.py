"""Critical-path extraction and the bounded slow-query log.

A retired trace is a span tree with per-span wall and thread-CPU time.
This module answers the question an operator actually asks of a slow
query — *where did the time go?* — in two steps:

* **self-time attribution**: each span's self time is its wall time
  minus the wall time of its children (clamped at zero; overlapping
  concurrent children can legitimately sum past the parent).  Sorting
  spans by self time names the stage that burned the clock rather than
  the ancestor that merely contained it.
* **critical path**: walk from the root, at each level descending into
  the child with the largest wall time.  That chain is the sequence of
  stages whose speedup would shorten the query.

:class:`SlowQueryLog` keeps the top-K slowest retired traces as
pre-computed summaries (a min-heap on wall time), so the service can
expose "what were the worst queries lately, and why" from memory with
no trace re-walking at read time.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from .trace import Trace


def _as_spans(trace) -> tuple[list[dict], float]:
    """Normalize a :class:`Trace` or its ``to_dict`` form to (spans, epoch)."""
    if isinstance(trace, Trace):
        data = trace.to_dict()
    else:
        data = trace
    return list(data.get("spans", ())), float(data.get("started_at", 0.0))


def _parent(span: dict) -> int:
    """Parent index; the root is ``-1`` (``None`` tolerated for foreign dumps)."""
    parent = span.get("parent")
    return -1 if parent is None else int(parent)


def _positions(spans: list[dict]) -> dict[int, int]:
    """Span index -> list position.

    Parent references name the span's recorded ``index``, which equals
    its list position only while the list is in recording order.  Spans
    can legitimately arrive out of order — shard workers report
    asynchronously, and :func:`~repro.obs.export.traces_jsonl` sorts by
    start time — so every consumer resolves parents through this map
    instead of trusting positions.
    """
    return {int(s.get("index", i)): i for i, s in enumerate(spans)}


def self_times(spans: list[dict]) -> list[float]:
    """Per-span self time: wall minus the sum of direct children's wall.

    Returned in list order (parallel to ``spans``), whatever order the
    spans happen to be in.
    """
    pos = _positions(spans)
    child_wall = [0.0] * len(spans)
    for span in spans:
        parent = pos.get(_parent(span), -1)
        if parent >= 0:
            child_wall[parent] += span.get("wall_s") or 0.0
    return [
        max(0.0, (span.get("wall_s") or 0.0) - child_wall[i])
        for i, span in enumerate(spans)
    ]


def critical_path(trace) -> list[dict]:
    """Root-to-leaf chain following the largest-wall child at each level.

    Accepts a :class:`Trace` or its ``to_dict`` form.  Each entry:
    ``{name, index, wall_s, cpu_s, self_s, start_s}``.
    """
    spans, _ = _as_spans(trace)
    if not spans:
        return []
    selfs = self_times(spans)
    pos = _positions(spans)
    children: dict[int, list[int]] = {}
    root = 0
    for i, span in enumerate(spans):
        parent = pos.get(_parent(span), -1)
        if parent < 0:
            root = i
        else:
            children.setdefault(parent, []).append(i)
    path = []
    node = root
    while True:
        span = spans[node]
        path.append(
            {
                "name": span.get("name"),
                "index": int(span.get("index", node)),
                "wall_s": span.get("wall_s") or 0.0,
                "cpu_s": span.get("cpu_s") or 0.0,
                "self_s": selfs[node],
                "start_s": span.get("start_s") or 0.0,
            }
        )
        kids = children.get(node)
        if not kids:
            return path
        node = max(kids, key=lambda i: spans[i].get("wall_s") or 0.0)


def summarize_trace(trace) -> dict:
    """Slow-log entry for one retired trace.

    ``hotspots`` are the top-3 spans by self time; ``critical_path`` the
    largest-wall root-to-leaf chain.  All numbers are precomputed so the
    summary is cheap to serve.
    """
    spans, started_at = _as_spans(trace)
    selfs = self_times(spans)
    root = next(
        (s for s in spans if _parent(s) < 0), spans[0] if spans else {}
    )
    hotspots = sorted(
        (
            {
                "name": span.get("name"),
                "index": int(span.get("index", i)),
                "self_s": selfs[i],
                "wall_s": span.get("wall_s") or 0.0,
                "cpu_s": span.get("cpu_s") or 0.0,
            }
            for i, span in enumerate(spans)
        ),
        key=lambda h: h["self_s"],
        reverse=True,
    )[:3]
    return {
        "query_id": (trace.query_id if isinstance(trace, Trace) else trace.get("query_id")),
        "tag": (trace.tag if isinstance(trace, Trace) else trace.get("tag")),
        "started_at": started_at,
        "wall_s": root.get("wall_s") or 0.0,
        "cpu_s": root.get("cpu_s") or 0.0,
        "spans": len(spans),
        "critical_path": critical_path(trace),
        "hotspots": hotspots,
    }


class SlowQueryLog:
    """Bounded top-K slowest-query log over retired traces.

    ``offer(trace)`` summarizes the trace *at retirement* (so the heap
    holds plain dicts, not live traces) and keeps it only if it ranks in
    the current top K by root wall time.  ``snapshot()`` returns the
    entries slowest-first.  Thread-safe; O(log K) per offer.
    """

    def __init__(self, k: int = 32) -> None:
        self.k = max(0, int(k))
        self._heap: list[tuple[float, int, dict]] = []
        self._tiebreak = itertools.count()
        self._lock = threading.Lock()
        self.offered = 0

    def offer(self, trace) -> bool:
        """Consider a retired trace; returns True if it entered the log."""
        if self.k == 0:
            return False
        spans, _ = _as_spans(trace)
        if not spans:
            return False
        root_wall = next(
            (s.get("wall_s") or 0.0 for s in spans if _parent(s) < 0),
            0.0,
        )
        with self._lock:
            self.offered += 1
            if len(self._heap) >= self.k and root_wall <= self._heap[0][0]:
                return False
            entry = (root_wall, next(self._tiebreak), summarize_trace(trace))
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, entry)
            else:
                heapq.heapreplace(self._heap, entry)
            return True

    def snapshot(self) -> list[dict]:
        """Current slow-log entries, slowest first."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [e[2] for e in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
