"""Thin adapter publishing the existing ``*Stats`` classes as metrics.

None of the sixteen ``*Stats`` dataclasses change API: they keep their
counters and ``snapshot()`` methods, and this module flattens those
snapshots into registry gauges on demand (every :meth:`QueryService.metrics`
call).  Pull-based publication matches how Prometheus scrapes anyway,
and it means zero extra work on the query hot path — the only *live*
metrics are the handful the service increments itself and the breaker
transition counters.

Naming: nested snapshot keys join with ``_`` under a ``repro_`` prefix
(``stats_snapshot()["engine"]["steals"]`` becomes ``repro_engine_steals``),
sanitized to the Prometheus name charset.  Non-numeric leaves are
skipped, except breaker states, which publish as a per-path
``repro_breaker_open`` 0/1 gauge plus trip/close counts.
"""

from __future__ import annotations

import re

from .metrics import MetricsRegistry, registry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(part: str) -> str:
    return _NAME_OK.sub("_", str(part))


#: ``# HELP`` text for the metrics with live (non-snapshot) semantics.
METRIC_HELP = {
    "repro_queries_total": "Queries retired by the service, by outcome.",
    "repro_query_latency_seconds": "End-to-end query latency in seconds.",
    "repro_obs_traces_retained": "Completed traces currently in the ring.",
    "repro_obs_traces_sampled": "Submissions that were sampled into a trace.",
    "repro_obs_submissions_considered": (
        "Submissions that reached the sampling decision."
    ),
    "repro_capture_records": "Workload records appended by the recorder.",
    "repro_capture_unsupported_plans": (
        "Captured queries whose plan the wire format cannot express."
    ),
    "repro_capture_rotations": "Capture file rotations performed.",
    "repro_capture_bytes": "Bytes in the current capture file generation.",
    "repro_slow_queries_retained": "Entries currently in the slow-query log.",
    "repro_breakers_open_total": "Circuit breakers currently not closed.",
    "repro_breaker_open": "Whether this access path's breaker is open (0/1).",
    "repro_shard_procs": "Shard worker processes in the pool.",
    "repro_shard_alive": "Shard worker processes currently alive.",
    "repro_shard_scans": "Coalesced scans fanned out across the pool.",
    "repro_shard_declined": (
        "Scans the fan-out cost model kept in-process (table too small)."
    ),
    "repro_shard_publishes": "Column-store publishes into shared memory.",
    "repro_shard_segments": "Shared-memory segments currently published.",
    "repro_shard_rows_scanned": "Rows scanned by shard workers, summed.",
    "repro_shard_worker_deaths": "Shard worker processes found dead.",
    "repro_shard_stalls": "Shard workers respawned for heartbeat stalls.",
    "repro_shard_respawns": "Shard worker respawns performed.",
    "repro_shard_reenqueued": "Shard tasks re-dispatched after a respawn.",
    "repro_shard_errors": "Pool scans abandoned to the in-process path.",
}


def describe_metrics(reg: MetricsRegistry | None = None) -> None:
    """Register ``# HELP`` strings for the well-known metric names."""
    reg = registry() if reg is None else reg
    for name, text in METRIC_HELP.items():
        reg.describe(name, text)


def publish_nested(
    reg: MetricsRegistry, prefix: str, mapping: dict, **labels
) -> int:
    """Publish every numeric leaf of ``mapping`` as ``prefix_path`` gauges.

    Returns the number of gauges written.  Booleans publish as 0/1;
    strings and ``None`` are skipped (identity goes in labels, not
    values).
    """
    written = 0
    for key, value in mapping.items():
        name = f"{prefix}_{_sanitize(key)}"
        if isinstance(value, dict):
            written += publish_nested(reg, name, value, **labels)
        elif isinstance(value, bool):
            reg.gauge(name, **labels).set(1.0 if value else 0.0)
            written += 1
        elif isinstance(value, (int, float)):
            reg.gauge(name, **labels).set(float(value))
            written += 1
    return written


def publish_breakers(reg: MetricsRegistry, breaker_snapshot: dict) -> None:
    """Per-access-path breaker state as labelled gauges."""
    for path, snap in breaker_snapshot.items():
        open_ = 0.0 if snap.get("state") == "closed" else 1.0
        reg.gauge("repro_breaker_open", path=path).set(open_)
        reg.gauge("repro_breaker_trips", path=path).set(
            float(snap.get("trips", 0))
        )
        reg.gauge("repro_breaker_closes", path=path).set(
            float(snap.get("closes", 0))
        )


def publish_service(service, reg: MetricsRegistry | None = None) -> None:
    """Sync one service's ``*Stats`` snapshots into the registry.

    Covers the merged :meth:`QueryService.stats_snapshot` tree (service,
    qos, admission, plan cache, result cache, coalescer, engine), the
    reliability health snapshot (retries, watchdog, faults), per-path
    breaker states, and the tracer's own sampling counters.
    """
    reg = registry() if reg is None else reg
    publish_nested(reg, "repro", service.stats_snapshot())
    health = service.health()
    publish_nested(reg, "repro_retry", health.retries)
    publish_nested(reg, "repro_watchdog", health.watchdog)
    publish_nested(reg, "repro_fault", health.faults)
    reg.gauge("repro_breakers_open_total").set(float(health.open_breakers))
    publish_breakers(reg, health.breakers)
    tracer = getattr(service, "tracer", None)
    if tracer is not None:
        reg.gauge("repro_obs_traces_retained").set(float(len(tracer.ring)))
        reg.gauge("repro_obs_traces_sampled").set(float(tracer.sampled))
        reg.gauge("repro_obs_submissions_considered").set(
            float(tracer.considered)
        )
    recorder = getattr(service, "recorder", None)
    if recorder is not None:
        publish_nested(reg, "repro_capture", recorder.stats_snapshot())
    slow_log = getattr(service, "slow_log", None)
    if slow_log is not None:
        reg.gauge("repro_slow_queries_retained").set(float(len(slow_log)))
    describe_metrics(reg)
