"""Figure 11: per-element time, vectorized NLJ vs tensor formulation.

Paper setup: total #FP32 processed in {25600, 2.56e6, 2.56e8}, vector
dimensionality in {1, 4, 16, 64, 256}; equal-sized input relations with
n = sqrt(#FP32 / dim) tuples each; metric is time per FP32 element.
Scaled here: the largest cluster is 2.56e7 (one decade down).

Expected shape (asserted): for the large cluster at dim >= 16, the tensor
(GEMM) formulation is faster per element than the row-at-a-time NLJ; with
only a handful of tuples (small cluster, high dim) the tensor setup
overhead makes it comparable or slower — the paper's "pays off in larger
inputs" observation.
"""

from __future__ import annotations

import math

import pytest

from repro.bench import FigureReport, time_call
from repro.core import TopKCondition, prefetch_nlj, tensor_join
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

OPS_CLUSTERS = pick([25_600, 2_560_000, 25_600_000], [25_600])
DIMS = pick([1, 4, 16, 64, 256], [4, 16])
CONDITION = TopKCondition(1)


def _sides(total_fp32: int, dim: int) -> int:
    return max(2, int(math.isqrt(total_fp32 // dim)))


def _make(total_fp32: int, dim: int):
    n = _sides(total_fp32, dim)
    left = unit_vectors(n, dim, stream=f"f11/l/{total_fp32}/{dim}")
    right = unit_vectors(n, dim, stream=f"f11/r/{total_fp32}/{dim}")
    return left, right


@pytest.mark.parametrize("total_fp32", OPS_CLUSTERS)
@pytest.mark.parametrize("dim", DIMS)
def test_fig11_tensor(benchmark, total_fp32, dim):
    left, right = _make(total_fp32, dim)
    benchmark.pedantic(
        tensor_join, args=(left, right, CONDITION), rounds=1, iterations=1
    )


@pytest.mark.parametrize("total_fp32", OPS_CLUSTERS[:2])
@pytest.mark.parametrize("dim", DIMS)
def test_fig11_nlj(benchmark, total_fp32, dim):
    left, right = _make(total_fp32, dim)
    benchmark.pedantic(
        prefetch_nlj, args=(left, right, CONDITION), rounds=1, iterations=1
    )


def test_fig11_report(benchmark):
    report = FigureReport(
        "fig11",
        "per-FP32-element time: vectorized NLJ vs tensor (largest cluster "
        "scaled 2.56e8 -> 2.56e7)",
        ("fp32_ops", "dim", "n_per_side", "strategy", "ns_per_element"),
    )
    per_element: dict[tuple, float] = {}
    for total in OPS_CLUSTERS:
        for dim in DIMS:
            left, right = _make(total, dim)
            n = left.shape[0]
            elements = n * n * dim
            for name, fn in (("nlj", prefetch_nlj), ("tensor", tensor_join)):
                _, seconds = time_call(fn, left, right, CONDITION)
                per_element[(name, total, dim)] = seconds / elements * 1e9
                report.add(total, dim, n, name, seconds / elements * 1e9)
    # Smoke mode's single tiny cluster cannot show the crossover.
    if not SMOKE:
        big = OPS_CLUSTERS[-1]
        for dim in (16, 64, 256):
            assert per_element[("tensor", big, dim)] < per_element[("nlj", big, dim)], (
                f"tensor should win per-element at {big} ops, dim {dim}"
            )
    report.note("tensor pays off with enough tuples to batch (paper Fig 11)")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
