"""Figure 12: impact of vector batching on the tensor formulation.

Paper setup: same grid as Figure 11; "Tensor-Fully-Batched" runs one GEMM
over both batched relations, "Tensor-Non-Batched" keeps one relation
batched while streaming the other vector-by-vector through the BLAS kernel
(repeated data movement).

Expected shape (asserted): negligible difference at tiny inputs, and a
clear fully-batched win as the input grows.
"""

from __future__ import annotations

import math

import pytest

from repro.bench import FigureReport, time_call
from repro.core import TopKCondition, tensor_join, tensor_join_non_batched
from repro.workloads import unit_vectors

from _smoke import pick

OPS_CLUSTERS = pick([25_600, 2_560_000, 25_600_000], [25_600])
DIMS = pick([1, 4, 16, 64, 256], [4, 16])
CONDITION = TopKCondition(1)


def _make(total_fp32: int, dim: int):
    n = max(2, int(math.isqrt(total_fp32 // dim)))
    left = unit_vectors(n, dim, stream=f"f12/l/{total_fp32}/{dim}")
    right = unit_vectors(n, dim, stream=f"f12/r/{total_fp32}/{dim}")
    return left, right


@pytest.mark.parametrize("total_fp32", OPS_CLUSTERS)
@pytest.mark.parametrize("batched", ["full", "non"])
def test_fig12_cell(benchmark, total_fp32, batched):
    left, right = _make(total_fp32, 64)
    fn = tensor_join if batched == "full" else tensor_join_non_batched
    benchmark.pedantic(fn, args=(left, right, CONDITION), rounds=1, iterations=1)


def test_fig12_report(benchmark):
    report = FigureReport(
        "fig12",
        "fully-batched vs non-batched tensor join (ns per FP32 element)",
        ("fp32_ops", "dim", "fully_batched", "non_batched", "ratio"),
    )
    ratios: dict[int, list[float]] = {}
    for total in OPS_CLUSTERS:
        for dim in DIMS:
            left, right = _make(total, dim)
            n = left.shape[0]
            elements = n * n * dim
            _, t_full = time_call(tensor_join, left, right, CONDITION)
            _, t_non = time_call(
                tensor_join_non_batched, left, right, CONDITION
            )
            ratio = t_non / t_full
            ratios.setdefault(total, []).append(ratio)
            report.add(
                total,
                dim,
                t_full / elements * 1e9,
                t_non / elements * 1e9,
                ratio,
            )
    # Batching should matter more for the largest cluster than the smallest.
    big_avg = sum(ratios[OPS_CLUSTERS[-1]]) / len(ratios[OPS_CLUSTERS[-1]])
    assert big_avg > 1.0, (
        f"fully-batched should win on the largest inputs (avg ratio {big_avg:.2f})"
    )
    report.note(
        "non-batched streams one input vector-at-a-time through BLAS; "
        "ratio > 1 means fully-batched wins"
    )
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
