"""Smoke-mode scaling for the figure benchmarks.

``python -m repro.bench --smoke`` sets ``REPRO_BENCH_SMOKE=1`` in the
benchmark process; every benchmark module then swaps its paper-scaled
sizes for minimal ones via :func:`pick`, so CI can sanity-run every
scenario end to end in seconds.  Timings from smoke runs are meaningless —
only the code paths and report plumbing are exercised.
"""

from __future__ import annotations

import os

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def pick(full, smoke):
    """Return the full-scale value, or the smoke-scale one under --smoke."""
    return smoke if SMOKE else full
