"""Ablation: the E-Selection Cost equation, validated empirically.

Section IV-A: ``Cost(sigma_{E,mu,theta}(R)) = |R| * (A + M + C)`` — linear
in the input cardinality, with the model term M dominating when embeddings
are computed inline.  This bench measures the scan E-selection across
cardinalities and checks linearity, plus the M-vs-(A+C) split by comparing
raw-item selection (pays M) against pre-embedded selection (M = 0).
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, time_call
from repro.core import TopKCondition, eselect
from repro.embedding import HashingEmbedder
from repro.workloads import unit_vectors

from _smoke import pick

DIM = 64
SIZES = pick([2_000, 4_000, 8_000, 16_000], [200, 400])
CONDITION = TopKCondition(10)


@pytest.fixture(scope="module")
def model():
    return HashingEmbedder(dim=DIM, seed=29)


@pytest.mark.parametrize("n", SIZES)
def test_eselect_cell(benchmark, n):
    relation = unit_vectors(n, DIM, stream=f"esel/{n}")
    query = unit_vectors(1, DIM, stream="esel/q")[0]
    benchmark.pedantic(
        eselect, args=(relation, query, CONDITION), rounds=1, iterations=1
    )


def test_eselection_cost_report(benchmark, model):
    report = FigureReport(
        "ablation_eselection",
        "E-selection cost: linear in |R|, model term dominates inline "
        "embedding (Sec IV-A equation)",
        ("rows", "pre_embedded_ms", "with_model_ms", "model_share_%"),
    )
    times = {}
    for n in SIZES:
        relation = unit_vectors(n, DIM, stream=f"esel/{n}")
        query = unit_vectors(1, DIM, stream="esel/q")[0]
        _, t_vec = time_call(eselect, relation, query, CONDITION, repeat=2)

        items = [f"item-{i}" for i in range(n)]
        _, t_items = time_call(
            eselect, items, "item-0", CONDITION, model=model
        )
        times[n] = t_vec
        share = (1 - t_vec / t_items) * 100 if t_items > 0 else 0.0
        report.add(n, t_vec * 1000, t_items * 1000, share)
    # Linearity: 8x rows should cost < 16x time (well within 2x of linear).
    assert times[SIZES[-1]] < times[SIZES[0]] * (SIZES[-1] // SIZES[0]) * 2
    # Inline model cost dominates the pre-embedded scan.
    report.note("prefetching removes M from the per-query critical path")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
