"""Figure 15: top-K=1 vector join, scan vs index, across selectivity.

Paper setup: 10k probes x 1M base with a relational filter; HNSW Lo/Hi in
Milvus; index wins above ~20-30% selectivity (its best case), scan wins
below.  Scaled here to 200 probes x 10k base, 256-D (dim raised so the
BLAS-backed scan does not trivially dominate the pure-Python probe; see
DESIGN.md substitutions).

Expected shape (asserted): scan wins at low selectivity; the Lo index's
*relative* position improves monotonically-ish toward high selectivity,
crossing or approaching the scan (crossover location is scale-dependent).
"""

from __future__ import annotations

from _scan_probe import probe_with_prefilter, run_sweep, scan_with_filter
from repro.core import TopKCondition

CONDITION = TopKCondition(1)


def test_fig15_scan_low_selectivity(benchmark, scan_probe_data, hnsw_lo, selectivity_bitmaps):
    probes, base = scan_probe_data
    bitmap = selectivity_bitmaps[1]
    benchmark.pedantic(
        scan_with_filter,
        args=(probes, base, bitmap, CONDITION),
        rounds=1,
        iterations=1,
    )


def test_fig15_index_high_selectivity(benchmark, scan_probe_data, hnsw_lo, selectivity_bitmaps):
    probes, base = scan_probe_data
    bitmap = selectivity_bitmaps[100]
    benchmark.pedantic(
        probe_with_prefilter,
        args=(probes, hnsw_lo, bitmap, CONDITION),
        rounds=1,
        iterations=1,
    )


def test_fig15_report(
    benchmark, scan_probe_data, hnsw_lo, hnsw_hi, selectivity_bitmaps
):
    probes, base = scan_probe_data
    report, times = run_sweep(
        "fig15",
        "top-K=1 join, scan vs index (scaled: 200 x 10k, 256-D)",
        CONDITION,
        probes,
        base,
        hnsw_lo,
        hnsw_hi,
        selectivity_bitmaps,
    )
    # Scan dominates at low selectivity (both index configs pay traversal).
    assert times[("tensor", 1)] < times[("index-lo", 1)]
    assert times[("tensor", 1)] < times[("index-hi", 1)]
    # The index's relative cost improves from low to high selectivity.
    low_ratio = times[("index-lo", 1)] / times[("tensor", 1)]
    high_ratio = times[("index-lo", 100)] / times[("tensor", 100)]
    assert high_ratio < low_ratio, (
        f"index should close the gap at high selectivity "
        f"(ratios {low_ratio:.1f} -> {high_ratio:.1f})"
    )
    report.note(
        "paper crossover at 20-30% selectivity (1M base); location is "
        "scale-dependent, shape (scan wins low, index improves high) holds"
    )
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
