"""Figure 16: top-K=32 vector join, scan vs index, across selectivity.

Paper setup: as Figure 15 but k=32; the deeper retrieval makes index
probes much more expensive, shifting the crossover to ~80% for the Lo
index and making the Hi index always slower than the scan.

Expected shape (asserted): the scan beats the Hi index at *every*
selectivity; the Lo index is slower than it was for k=1 relative to scan.
"""

from __future__ import annotations

from _scan_probe import probe_with_prefilter, run_sweep, scan_with_filter
from repro.core import TopKCondition

CONDITION = TopKCondition(32)


def test_fig16_scan_cell(benchmark, scan_probe_data, selectivity_bitmaps):
    probes, base = scan_probe_data
    benchmark.pedantic(
        scan_with_filter,
        args=(probes, base, selectivity_bitmaps[40], CONDITION),
        rounds=1,
        iterations=1,
    )


def test_fig16_index_cell(benchmark, scan_probe_data, hnsw_lo, selectivity_bitmaps):
    probes, base = scan_probe_data
    benchmark.pedantic(
        probe_with_prefilter,
        args=(probes, hnsw_lo, selectivity_bitmaps[40], CONDITION),
        rounds=1,
        iterations=1,
    )


def test_fig16_report(
    benchmark, scan_probe_data, hnsw_lo, hnsw_hi, selectivity_bitmaps
):
    probes, base = scan_probe_data
    report, times = run_sweep(
        "fig16",
        "top-K=32 join, scan vs index (scaled: 200 x 10k, 256-D)",
        CONDITION,
        probes,
        base,
        hnsw_lo,
        hnsw_hi,
        selectivity_bitmaps,
    )
    # Hi index: higher-accuracy construction makes probes expensive enough
    # that the scan wins across the sweep (paper: "impractical by being
    # always slower for high-accuracy index").
    for pct in selectivity_bitmaps:
        assert times[("tensor", pct)] < times[("index-hi", pct)], (
            f"scan should beat Hi index at {pct}% for top-32"
        )
    report.note("paper: Lo crossover shifts to ~80%; Hi never wins at k=32")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
