"""Ablation: pre-normalized inputs vs on-the-fly normalization.

Section IV-C notes that cosine similarity over *normalized* inputs is a
plain dot product.  An engine can therefore normalize embeddings once at
storage/prefetch time and skip per-join normalization.  This ablation
quantifies the saving for the tensor join — a design choice DESIGN.md
calls out (it motivates storing unit vectors in the EmbeddingStore and
vector indexes).
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, time_call
from repro.core import ThresholdCondition, tensor_join
from repro.vector import normalize_rows
from repro.workloads import random_vectors

from _smoke import pick

DIM = 100
CONDITION = ThresholdCondition(0.9)
SIZES = pick([(2_000, 2_000), (6_000, 6_000)], [(200, 200)])


@pytest.mark.parametrize("n", [s[0] for s in SIZES])
def test_ablation_cell(benchmark, n):
    left = normalize_rows(random_vectors(n, DIM, stream=f"abl/l/{n}"))
    right = normalize_rows(random_vectors(n, DIM, stream=f"abl/r/{n}"))
    benchmark.pedantic(
        tensor_join,
        args=(left, right, CONDITION),
        kwargs={"assume_normalized": True},
        rounds=1,
        iterations=1,
    )


def test_ablation_report(benchmark):
    report = FigureReport(
        "ablation_normalization",
        "tensor join: normalize per join vs pre-normalized storage",
        ("size", "on_the_fly_ms", "pre_normalized_ms", "saving_%"),
    )
    for n_left, n_right in SIZES:
        raw_l = random_vectors(n_left, DIM, stream=f"abl/l/{n_left}")
        raw_r = random_vectors(n_right, DIM, stream=f"abl/r/{n_right}")
        pre_l, pre_r = normalize_rows(raw_l), normalize_rows(raw_r)
        # best-of-2 so allocator warm-up does not masquerade as a saving
        _, t_fly = time_call(tensor_join, raw_l, raw_r, CONDITION, repeat=2)
        _, t_pre = time_call(
            tensor_join, pre_l, pre_r, CONDITION, assume_normalized=True,
            repeat=2,
        )
        saving = (1 - t_pre / t_fly) * 100 if t_fly > 0 else 0.0
        report.add(f"{n_left}x{n_right}", t_fly * 1000, t_pre * 1000, saving)
        # Results must be identical either way.
        r1 = tensor_join(raw_l, raw_r, CONDITION)
        r2 = tensor_join(pre_l, pre_r, CONDITION, assume_normalized=True)
        assert r1.pairs() == r2.pairs()
    report.note("normalization is O((|R|+|S|)*d) vs the O(|R|*|S|*d) join; "
                "the saving shrinks as the join grows")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
