"""Ablation: the model-cost axis M of the cost model (Section IV-A).

The paper notes the model cost "can span from random access to a lookup
table ... to expensive computations over deep neural networks", and that
under model-as-a-service pricing the prefetch optimization "conversely
results in monetary savings".  This bench dials a simulated per-item model
latency and shows that:

* the naive join's cost grows with M at a |R|*|S| rate while the prefetch
  join grows at |R|+|S| — the gap widens linearly in M,
* the model-call counters directly give the per-join monetary cost under
  a pay-per-embedding price.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, time_call
from repro.core import ThresholdCondition, naive_nlj, prefetch_nlj
from repro.embedding import HashingEmbedder

from _smoke import pick

N_LEFT = 40
N_RIGHT = 40
CONDITION = ThresholdCondition(0.8)
#: Simulated per-embedding latencies (seconds): lookup table -> deep model.
LATENCIES = pick([0.0, 0.0001, 0.0005], [0.0, 0.0001])
#: Pretend price per embedding call (USD), for the monetary column.
PRICE_PER_CALL = 0.0001


def _words(n: int, prefix: str) -> list[str]:
    return [f"{prefix}-{i}" for i in range(n)]


@pytest.mark.parametrize("latency", LATENCIES)
def test_model_cost_cell(benchmark, latency):
    model = HashingEmbedder(dim=32, simulated_latency_s=latency)
    benchmark.pedantic(
        prefetch_nlj,
        args=(_words(N_LEFT, "l"), _words(N_RIGHT, "r"), CONDITION),
        kwargs={"model": model},
        rounds=1,
        iterations=1,
    )


def test_model_cost_report(benchmark):
    report = FigureReport(
        "ablation_model_cost",
        "model cost M sweep: naive pays |R||S| calls, prefetch |R|+|S| "
        f"(pay-per-embedding at ${PRICE_PER_CALL}/call)",
        ("latency_ms", "strategy", "time_ms", "model_calls", "cost_usd"),
    )
    naive_times = []
    prefetch_times = []
    for latency in LATENCIES:
        left = _words(N_LEFT, "l")
        right = _words(N_RIGHT, "r")
        naive_model = HashingEmbedder(dim=32, simulated_latency_s=latency)
        naive_result, t_naive = time_call(
            naive_nlj, left, right, naive_model, CONDITION
        )
        prefetch_model = HashingEmbedder(dim=32, simulated_latency_s=latency)
        prefetch_result, t_prefetch = time_call(
            prefetch_nlj, left, right, CONDITION, model=prefetch_model
        )
        for name, result, seconds in (
            ("naive", naive_result, t_naive),
            ("prefetch", prefetch_result, t_prefetch),
        ):
            report.add(
                latency * 1000,
                name,
                seconds * 1000,
                result.stats.model_calls,
                result.stats.model_calls * PRICE_PER_CALL,
            )
        naive_times.append(t_naive)
        prefetch_times.append(t_prefetch)
        # The call-count claim is exact at any latency.
        assert naive_result.stats.model_calls == 2 * N_LEFT * N_RIGHT
        assert prefetch_result.stats.model_calls == N_LEFT + N_RIGHT
    # Raising M adds |R|*|S| latency units to the naive join but only
    # |R|+|S| to the prefetch join: the *added* cost must be far larger on
    # the naive side (per-call overhead cancels in the difference).
    naive_delta = naive_times[-1] - naive_times[0]
    prefetch_delta = prefetch_times[-1] - prefetch_times[0]
    assert naive_delta > 5 * max(prefetch_delta, 1e-9), (
        f"model-latency increase should hit naive quadratically: "
        f"naive +{naive_delta:.3f}s vs prefetch +{prefetch_delta:.3f}s"
    )
    report.note("monetary column = calls x price: prefetch saves "
                f"{2 * N_LEFT * N_RIGHT - (N_LEFT + N_RIGHT)} calls per join")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
