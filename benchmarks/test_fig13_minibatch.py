"""Figure 13: mini-batch size vs memory requirement and execution time.

Paper setup: 100k x 100k, 100-D tensor join; the "No Batch" case holds the
full |R| x |S| FP32 intermediate (40 GB at paper scale); mini-batches of
decreasing size trade a small relative slowdown for a large reduction in
required RAM.  Scaled here to 6k x 6k (full intermediate 144 MB).

Expected shape (asserted): required RAM shrinks quadratically with the
batch edge while the slowdown stays within a small factor.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, time_call
from repro.core import ThresholdCondition, tensor_join
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

DIM = 100
N = pick(6_000, 300)
CONDITION = ThresholdCondition(0.9)
#: (batch_left, batch_right) mini-batch shapes; None means No Batch.
BATCHES = pick(
    [None, (3_000, 3_000), (2_000, 2_000), (1_000, 1_000), (500, 500)],
    [None, (100, 100)],
)


@pytest.fixture(scope="module")
def data():
    left = unit_vectors(N, DIM, stream="f13/l")
    right = unit_vectors(N, DIM, stream="f13/r")
    return left, right


@pytest.mark.parametrize("batch", BATCHES, ids=lambda b: "nobatch" if b is None else f"{b[0]}x{b[1]}")
def test_fig13_batch(benchmark, batch, data):
    left, right = data
    kwargs = {}
    if batch is not None:
        kwargs = {"batch_left": batch[0], "batch_right": batch[1]}
    benchmark.pedantic(
        tensor_join,
        args=(left, right, CONDITION),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )


def test_fig13_report(benchmark, data):
    left, right = data
    report = FigureReport(
        "fig13",
        "mini-batch impact, 6k x 6k 100-D (paper: 100k x 100k)",
        ("batch", "time_ms", "buffer_MB", "rel_slowdown", "ram_reduction"),
    )
    base_time = None
    base_buffer = None
    slowdowns = []
    reductions = []
    for batch in BATCHES:
        kwargs = (
            {}
            if batch is None
            else {"batch_left": batch[0], "batch_right": batch[1]}
        )
        result, seconds = time_call(
            tensor_join, left, right, CONDITION, **kwargs
        )
        buffer_mb = result.stats.peak_buffer_elements * 4 / 1e6
        if base_time is None:
            base_time, base_buffer = seconds, buffer_mb
        slowdown = seconds / base_time
        reduction = base_buffer / buffer_mb
        slowdowns.append(slowdown)
        reductions.append(reduction)
        label = "nobatch" if batch is None else f"{batch[0]}x{batch[1]}"
        report.add(label, seconds * 1000, buffer_mb, slowdown, reduction)
    # RAM shrinks by orders of magnitude; slowdown stays within a few x.
    # Smoke sizes are too small for the orders-of-magnitude claim.
    if not SMOKE:
        assert reductions[-1] >= 100, (
            f"smallest batch should cut RAM >= 100x, got {reductions[-1]:.1f}x"
        )
        assert max(slowdowns) < 10, (
            f"mini-batching slowdown should stay within 10x, "
            f"got {max(slowdowns):.1f}x"
        )
    report.note("paper: negligible slowdown for orders-of-magnitude RAM savings")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
