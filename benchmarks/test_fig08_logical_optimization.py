"""Figure 8: impact of logical (prefetch) and physical (SIMD) optimization.

Paper setup: naive vs prefetch E-NLJ, with and without SIMD, over 100-D
vectors at 1k x 1k .. 10k x 10k (48 threads).  Scaled here to
100x100 .. 200x200 single-threaded; "SIMD" is the NumPy-vectorized kernel,
"NO-SIMD" the pure-Python scalar kernel (see DESIGN.md substitutions).

Expected shape (asserted): prefetch beats naive by a large factor at every
size (quadratic vs linear model cost); SIMD helps the prefetch formulation
but cannot rescue the naive one.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, time_call
from repro.core import ThresholdCondition, naive_nlj, prefetch_nlj
from repro.embedding import HashingEmbedder
from repro.vector import Kernel

from _smoke import pick

SIZES = pick([(100, 100), (200, 100), (200, 200)], [(20, 20)])
CONDITION = ThresholdCondition(0.8)
DIM = 100


def _words(n: int, prefix: str) -> list[str]:
    return [f"{prefix}-token-{i}" for i in range(n)]


@pytest.fixture(scope="module")
def model() -> HashingEmbedder:
    return HashingEmbedder(dim=DIM)


def _run(variant: str, n_left: int, n_right: int, model: HashingEmbedder):
    left = _words(n_left, "l")
    right = _words(n_right, "r")
    if variant == "naive-nosimd":
        return naive_nlj(left, right, model, CONDITION, kernel=Kernel.SCALAR)
    if variant == "naive-simd":
        return naive_nlj(left, right, model, CONDITION, kernel=Kernel.VECTORIZED)
    if variant == "prefetch-nosimd":
        return prefetch_nlj(left, right, CONDITION, model=model, kernel=Kernel.SCALAR)
    assert variant == "prefetch-simd"
    return prefetch_nlj(left, right, CONDITION, model=model, kernel=Kernel.VECTORIZED)


VARIANTS = ["naive-nosimd", "naive-simd", "prefetch-nosimd", "prefetch-simd"]


@pytest.mark.parametrize("n_left,n_right", SIZES)
@pytest.mark.parametrize("variant", VARIANTS)
def test_fig08_variant(benchmark, variant, n_left, n_right, model):
    """One (variant, size) cell of Figure 8."""
    benchmark.pedantic(
        _run, args=(variant, n_left, n_right, model), rounds=1, iterations=1
    )


def test_fig08_report(benchmark, model):
    """Full Figure 8 series with shape assertions."""
    report = FigureReport(
        "fig08",
        "naive vs prefetch NLJ x SIMD on/off (scaled from 1k-10k to 100-200)",
        ("size", "variant", "time_ms", "model_calls"),
    )
    times: dict[tuple, float] = {}
    for n_left, n_right in SIZES:
        for variant in VARIANTS:
            result, seconds = time_call(_run, variant, n_left, n_right, model)
            times[(variant, n_left, n_right)] = seconds
            report.add(
                f"{n_left}x{n_right}",
                variant,
                seconds * 1000,
                result.stats.model_calls,
            )
    for n_left, n_right in SIZES:
        naive = times[("naive-simd", n_left, n_right)]
        prefetch = times[("prefetch-simd", n_left, n_right)]
        # Paper: orders of magnitude; we assert a conservative 5x.
        assert prefetch * 5 < naive, (
            f"prefetch should dominate naive at {n_left}x{n_right}: "
            f"{prefetch:.4f}s vs {naive:.4f}s"
        )
        scalar = times[("prefetch-nosimd", n_left, n_right)]
        vectorized = times[("prefetch-simd", n_left, n_right)]
        assert vectorized < scalar, (
            "vectorized kernel should beat the scalar kernel under prefetch"
        )
    report.note(
        "prefetch turns |R|*|S| model calls into |R|+|S| (cost model Sec IV-A)"
    )
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
