"""Figure 17: range (similarity >= 0.9) vector join, scan vs index.

Paper setup: as Figures 15-16 but the join condition is a similarity
threshold — an expression the index was *not* built for.  The index can
only retrieve top-k (k=32) and post-filter, so it both loses result
completeness and keeps its probe cost; the scan evaluates the range
predicate natively and exhaustively.

Expected shape (asserted): the scan beats both index configurations across
the sweep (paper: index comparable only around 5-10% selectivity), and the
scan returns at least as many qualifying pairs as the top-k-limited index.
"""

from __future__ import annotations

from _scan_probe import (
    probe_with_prefilter,
    run_sweep,
    scan_with_filter,
)
from repro.core import ThresholdCondition

#: 256-D random unit vectors rarely exceed 0.2 cosine; 0.18 yields a thin,
#: non-empty result like the paper's 0.9 threshold does on embeddings.
CONDITION = ThresholdCondition(0.18)


def test_fig17_scan_cell(benchmark, scan_probe_data, selectivity_bitmaps):
    probes, base = scan_probe_data
    benchmark.pedantic(
        scan_with_filter,
        args=(probes, base, selectivity_bitmaps[40], CONDITION),
        rounds=1,
        iterations=1,
    )


def test_fig17_index_cell(benchmark, scan_probe_data, hnsw_lo, selectivity_bitmaps):
    probes, base = scan_probe_data
    benchmark.pedantic(
        probe_with_prefilter,
        args=(probes, hnsw_lo, selectivity_bitmaps[40], CONDITION),
        rounds=1,
        iterations=1,
    )


def test_fig17_report(
    benchmark, scan_probe_data, hnsw_lo, hnsw_hi, selectivity_bitmaps
):
    probes, base = scan_probe_data
    report, times = run_sweep(
        "fig17",
        "range join (sim >= t), scan vs index top-32 emulation "
        "(scaled: 200 x 10k, 256-D)",
        CONDITION,
        probes,
        base,
        hnsw_lo,
        hnsw_hi,
        selectivity_bitmaps,
    )
    wins = sum(
        1
        for pct in selectivity_bitmaps
        if times[("tensor", pct)] < times[("index-lo", pct)]
    )
    assert wins >= len(selectivity_bitmaps) - 1, (
        "scan should dominate the Lo index for range conditions "
        f"(won {wins}/{len(selectivity_bitmaps)})"
    )
    # Completeness: the scan is exact and unlimited; the index is capped at
    # top-32 per probe and approximate.
    from _scan_probe import scan_with_filter as scan_fn

    full_bitmap = selectivity_bitmaps[100]
    scan_result = scan_fn(probes, base, full_bitmap, CONDITION)
    index_result = probe_with_prefilter(probes, hnsw_hi, full_bitmap, CONDITION)
    assert len(scan_result) >= len(index_result), (
        "exact scan must return at least as many qualifying pairs as the "
        "top-k-limited index"
    )
    report.note(
        "index emulates the range via top-32 retrieval + post-filter "
        "(build-time distance limitation, Table I)"
    )
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
