"""Figure 14: tensor join vs NLJ formulation, end-to-end.

Paper setup: 100-D, 48 threads, 10k x 10k .. 1M x 1M; tensor join wins by
almost an order of magnitude across sizes, and the 1M x 1M NLJ times out
(40+ minutes).  Scaled ~10x down; both operators single-process (the
thread-scaling axis is Figure 9's subject).

Expected shape (asserted): both scale ~linearly in |R| x |S|; tensor is
faster at every size, with a growing advantage.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, speedup, time_call
from repro.core import ThresholdCondition, prefetch_nlj, tensor_join
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

DIM = 100
CONDITION = ThresholdCondition(0.9)
SIZES = pick(
    [(1_000, 1_000), (3_000, 1_000), (3_000, 3_000), (10_000, 3_000),
     (10_000, 10_000)],
    [(200, 200)],
)


@pytest.fixture(scope="module")
def pool():
    return unit_vectors(10_000, DIM, stream="f14/pool")


@pytest.mark.parametrize("n_left,n_right", SIZES)
@pytest.mark.parametrize("strategy", ["tensor", "nlj"])
def test_fig14_cell(benchmark, strategy, n_left, n_right, pool):
    left = pool[:n_left]
    right = pool[:n_right]
    fn = tensor_join if strategy == "tensor" else prefetch_nlj
    benchmark.pedantic(fn, args=(left, right, CONDITION), rounds=1, iterations=1)


def test_fig14_report(benchmark, pool):
    report = FigureReport(
        "fig14",
        "tensor vs NLJ end-to-end, 100-D (paper: up to 1M x 1M)",
        ("size", "tensor_ms", "nlj_ms", "tensor_speedup"),
    )
    gains = []
    for n_left, n_right in SIZES:
        left = pool[:n_left]
        right = pool[:n_right]
        _, t_tensor = time_call(tensor_join, left, right, CONDITION, repeat=2)
        _, t_nlj = time_call(prefetch_nlj, left, right, CONDITION, repeat=2)
        gain = speedup(t_nlj, t_tensor)
        gains.append(gain)
        report.add(f"{n_left}x{n_right}", t_tensor * 1000, t_nlj * 1000, gain)
    report.note("paper reports ~an order of magnitude tensor advantage")
    report.emit()  # persist the artifact before any shape assertion fires
    # Smoke sizes are within scheduler noise; the shape claim needs scale.
    if not SMOKE:
        for (n_left, n_right), gain in zip(SIZES, gains):
            assert gain > 1, (
                f"tensor should beat NLJ at {n_left}x{n_right}, got {gain:.2f}x"
            )
        # The paper's ~10x needs many cores + MKL; a single-core BLAS vs
        # NumPy matvec loop shows a smaller but still clear advantage.
        assert max(gains) >= 2, (
            f"tensor advantage should reach >= 2x, got {max(gains):.1f}x"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
