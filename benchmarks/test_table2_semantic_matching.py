"""Table II: semantic matching with a FastText-style model.

Paper setup: FastText trained on a Wikipedia subset, 100-D; top-15 model
matches for sample words (dbms, postgres, clothes) are topically related
terms, plus plural forms and misspellings.  Substitution: our from-scratch
subword SGNS model trained on the synthetic semantic corpus (engineered
topics + injected variants); the probe words and the expected *kind* of
matches are the same.

Expected shape (asserted): for each probe word, a majority of the top-15
neighbours are ground-truth related (same topic or variants).
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, time_call
from repro.embedding import FastTextModel, generate_corpus

PROBE_WORDS = ["dbms", "postgres", "clothes"]
TOP_K = 15


@pytest.fixture(scope="module")
def trained():
    corpus = generate_corpus(n_sentences=2500, sentence_length=(5, 9), seed=11)
    model = FastTextModel(dim=48, window=3, negatives=4, seed=11)
    model.fit(corpus.sentences, epochs=2)
    return corpus, model


def test_table2_training_benchmark(benchmark):
    corpus = generate_corpus(n_sentences=600, sentence_length=(5, 8), seed=12)

    def train():
        model = FastTextModel(dim=32, window=3, negatives=3, seed=12)
        return model.fit(corpus.sentences, epochs=1)

    benchmark.pedantic(train, rounds=1, iterations=1)


def test_table2_report(benchmark, trained):
    corpus, model = trained
    report = FigureReport(
        "table2",
        "semantic matching, subword SGNS on synthetic corpus "
        "(paper: FastText on Wikipedia)",
        ("word", "top_matches", "topical_hits", "lookup_ms"),
    )
    for word in PROBE_WORDS:
        neighbors, seconds = time_call(model.nearest_neighbors, word, TOP_K)
        related = corpus.related_words(word)
        hits = sum(1 for w, _ in neighbors if w in related)
        report.add(
            word,
            ", ".join(w for w, _ in neighbors[:8]),
            f"{hits}/{TOP_K}",
            seconds * 1000,
        )
        assert hits >= TOP_K // 2, (
            f"{word}: only {hits}/{TOP_K} topical neighbours; model failed "
            "to learn the semantic clusters"
        )
    report.note("matches include synonyms, plural forms, and misspellings, "
                "as in the paper's Table II")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
