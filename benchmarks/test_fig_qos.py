"""fig_qos: deadline-aware serving keeps tail latency flat under load.

``fig_service`` shows throughput; this scenario shows *tails*.  With a
bounded execution pool, naive submission lets queue wait dominate: p99
latency grows roughly linearly with the client count.  The QoS layer
(:meth:`repro.service.QueryService.submit_qos`) holds the tail flat by
refusing to spend execution slots on work that cannot meet its deadline:

* queries whose deadline expires while queued are shed fast with
  ``DeadlineExceededError`` (they never occupy a slot);
* queries whose full-precision estimate misses the deadline — but whose
  stated recall floor admits a quantized path — run a PQ/int8
  prescreen-only scan instead, explicitly flagged ``degraded``;
* everything else runs at full precision, bit-identical to serial.

The scenario drives 1 -> 64 -> 256 concurrent clients over one corpus.
Clients pace their submissions (staggered, fixed per-client interval
sized so 64 clients offer ~1.5x the measured serial capacity — 256
clients therefore ~6x), and each (mode, clients) cell reports
completed/degraded/shed counts, the deadline-miss rate, and p50/p95/p99
latency over completed queries:

* ``no-qos`` — plain ``submit()``: every query waits for a slot and runs
  at full precision, however late it lands;
* ``qos``    — ``submit_qos()`` with a per-query deadline and recall
  floor.

Correctness gate: every *non-degraded* completed result is asserted
bit-identical to one-at-a-time serial execution on the bare engine.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import Engine, QueryService
from repro.bench import FigureReport, Seconds, latency_percentiles
from repro.config import rng
from repro.embedding import HashingEmbedder
from repro.errors import DeadlineExceededError
from repro.relational import Catalog, DataType, Field, Table
from repro.relational.column import Column
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

N_ROWS = pick(48_000, 1_500)
DIM = pick(256, 24)
TOTAL_QUERIES = pick(512, 24)
HOT_POOL = pick(24, 4)
HOT_FRACTION = 0.3
K = 10
CLIENT_COUNTS = (1, 64, 256) if not SMOKE else (1, 4)
#: Execution slots — deliberately far below the peak client count, so
#: queue pressure (not compute) is what the QoS layer must manage.
MAX_INFLIGHT = 8
#: Offered load at 64 clients, as a multiple of measured serial capacity
#: (1 / p50 serial latency).  256 clients then offer 4x this.
OVERLOAD_AT_64 = 1.5
#: Recall floor clients state: PQ at the default rerank multiple sits
#: exactly at it, so degradation is available.
MIN_RECALL = 0.95
#: Serial warm-up queries per service (> qos_min_estimate_samples, so
#: the execution-time tracker is live before the timed run).
WARMUP = 12
#: Concurrent warm-up burst (qos mode): seeds the "full"/"degraded"
#: EWMAs with *contended* execution times, the values the shed/degrade
#: decision actually faces under load.
WARM_BURST = pick(24, 6)
MODEL = "qos-model"


def queries_per_client(clients: int) -> int:
    """Fixed total at 1 client; enough per client for pacing above."""
    return TOTAL_QUERIES if clients == 1 else max(4, TOTAL_QUERIES // clients)


def _catalog() -> Catalog:
    base = unit_vectors(N_ROWS, DIM, stream="fig_qos/base")
    table = Table.from_columns(
        [
            Column(Field("id", DataType.INT64), np.arange(N_ROWS)),
            Column(Field("emb", DataType.TENSOR, dim=DIM), base),
        ]
    )
    catalog = Catalog()
    catalog.register("corpus", table)
    return catalog


def _query_stream(n: int, stream: str) -> list[np.ndarray]:
    """Deterministic stream: ~30% hot-pool repeats, rest unique."""
    hot = unit_vectors(HOT_POOL, DIM, stream=f"{stream}/hot")
    unique = unit_vectors(n, DIM, stream=f"{stream}/unique")
    coin = rng(f"{stream}/coin")
    out = []
    for i in range(n):
        if coin.random() < HOT_FRACTION:
            out.append(hot[int(coin.integers(HOT_POOL))])
        else:
            out.append(unique[i])
    return out


def _fresh_engine() -> Engine:
    engine = Engine(_catalog())
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def _builder(engine: Engine, qvec: np.ndarray):
    return engine.query("corpus").esimilar("emb", qvec, model=MODEL, top_k=K)


def _prewarm(engine: Engine, service: QueryService, warm_stream) -> None:
    """Build the shared stores and seed the exec-time tracker off-clock.

    The PQ store build (k-means fit + encode) costs seconds at full
    scale; it is a one-time, amortized cost in a long-running service,
    so the benchmark pays it before the timed window.  The warm-up
    queries seed the "full" EWMA past ``qos_min_estimate_samples`` —
    a cold tracker never sheds, by design.
    """
    ctx = engine.context(tag="prewarm")
    table = ctx.catalog.get("corpus")
    vectors = table.array("emb")
    key = ("corpus", "emb", MODEL)
    ctx.normalized_matrix_for(key, vectors)
    ctx.quant_store_for(key, vectors, "pq")
    ctx.quant_store_for(key, vectors, "int8")
    for qvec in warm_stream:
        service.submit_qos(_builder(engine, qvec), tag="warmup")


def _run_naive(stream) -> tuple[list, list[float]]:
    """One-at-a-time serial execution: the bit-identical reference."""
    engine = _fresh_engine()
    results, latencies = [], []
    for qvec in stream:
        t0 = time.perf_counter()
        results.append(_builder(engine, qvec).execute())
        latencies.append(time.perf_counter() - t0)
    return results, latencies


def _warm_burst(engine, service, deadline_s: float) -> None:
    """Concurrent qos-mode warm-up: seed EWMAs with contended timings."""
    warm = _query_stream(WARM_BURST, "fig_qos/burst")
    threads = []

    def fire(qvec) -> None:
        try:
            service.submit_qos(
                _builder(engine, qvec),
                deadline_s=deadline_s,
                min_recall=MIN_RECALL,
                tag="warm-burst",
            )
        except DeadlineExceededError:
            pass

    for qvec in warm:
        thread = threading.Thread(target=fire, args=(qvec,), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()


def _run_mode(stream, clients: int, use_qos: bool, deadline_s: float,
              interval_s: float):
    """Drive the service with ``clients`` paced threads; classify queries.

    Each client is staggered by ``i * interval_s / clients`` and then
    aims one submission every ``interval_s`` (sleeping only up to its
    schedule — a client running behind submits immediately), so arrivals
    spread evenly instead of stampeding the admission queue at t=0.
    Returns ``(outcomes, tables, wall, service)`` where ``outcomes[qi]``
    is ``("ok"|"late"|"degraded"|"shed", latency_seconds)`` and
    ``tables[qi]`` is the result table for completed queries.
    """
    engine = _fresh_engine()
    service = QueryService(engine, max_inflight=MAX_INFLIGHT)
    _prewarm(engine, service, _query_stream(WARMUP, "fig_qos/warm"))
    if use_qos and clients > 1:
        # Seed the EWMAs with *contended* timings before the timed run —
        # but only for loaded cells: the 1-client baseline must reflect
        # uncontended serving, not burst-inflated estimates.
        _warm_burst(engine, service, deadline_s)
    per_client = queries_per_client(clients)
    n = per_client * clients
    assert n <= len(stream)
    outcomes: list = [None] * n
    tables: list = [None] * n
    barrier = threading.Barrier(clients + 1)
    pace = 0.0 if clients == 1 else interval_s

    def client(ci: int) -> None:
        chunk = list(range(ci, n, clients))
        stagger = ci * pace / clients
        with service.session() as session:
            barrier.wait()
            t_start = time.perf_counter()
            for j, qi in enumerate(chunk):
                target = t_start + stagger + j * pace
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                t0 = time.perf_counter()
                if not use_qos:
                    tables[qi] = session.execute(_builder(engine, stream[qi]))
                    latency = time.perf_counter() - t0
                    kind = "ok" if latency <= deadline_s else "late"
                    outcomes[qi] = (kind, latency)
                    continue
                try:
                    response = session.execute_qos(
                        _builder(engine, stream[qi]),
                        deadline_s=deadline_s,
                        min_recall=MIN_RECALL,
                    )
                except DeadlineExceededError:
                    outcomes[qi] = ("shed", time.perf_counter() - t0)
                    continue
                tables[qi] = response.table
                if response.degraded:
                    kind = "degraded"
                elif response.deadline_met:
                    kind = "ok"
                else:
                    kind = "late"
                outcomes[qi] = (kind, response.latency_s)

    threads = [
        threading.Thread(target=client, args=(ci,), daemon=True)
        for ci in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return outcomes, tables, wall, service


def _assert_exact_results(reference, tables, outcomes) -> None:
    """Non-degraded completed results must be bit-identical to serial."""
    for qi, table in enumerate(tables):
        if table is None or outcomes[qi][0] == "degraded":
            continue
        ref = reference[qi]
        assert ref.schema.names == table.schema.names, (
            f"query {qi}: schema differs from serial execution"
        )
        for name in ref.schema.names:
            assert np.array_equal(ref.array(name), table.array(name)), (
                f"query {qi}: column {name!r} differs from serial execution"
            )


def test_fig_qos_report(benchmark):
    longest = max(c * queries_per_client(c) for c in CLIENT_COUNTS)
    stream = _query_stream(longest, "fig_qos/stream")
    reference, naive_lat = _run_naive(stream)
    naive_pct = latency_percentiles(naive_lat)
    # The per-query deadline: ~10 uncontended executions (scaled off the
    # stable p50, not the noisy p99).  Tight enough that queue wait
    # under load blows through it, loose enough that the *contended*
    # degraded estimate (exec slots share cores, so concurrent execution
    # runs up to MAX_INFLIGHT x slower than serial) still fits —
    # degradation must stay available under load.
    deadline_s = max(10.0 * naive_pct["p50"], 0.02)
    # Per-client pacing interval: 64 clients together offer
    # OVERLOAD_AT_64 x the measured serial capacity (1 / p50).
    interval_s = 64.0 * naive_pct["p50"] / OVERLOAD_AT_64

    report = FigureReport(
        "fig_qos",
        f"Deadline-aware QoS tail latency over {N_ROWS}x{DIM} corpus, "
        f"top-{K} queries, {MAX_INFLIGHT} execution slots, "
        f"deadline {deadline_s * 1e3:.1f} ms, recall floor {MIN_RECALL}, "
        f"{OVERLOAD_AT_64}x offered load at 64 clients",
        (
            "mode",
            "clients",
            "seconds",
            "completed",
            "degraded",
            "shed",
            "miss_rate",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ),
    )
    report.note(
        f"serial reference: p50 {naive_pct['p50'] * 1e3:.2f} ms, "
        f"p99 {naive_pct['p99'] * 1e3:.2f} ms over {len(naive_lat)} queries"
    )

    p99_by_mode: dict[tuple[str, int], float] = {}
    for clients in CLIENT_COUNTS:
        for mode, use_qos in (("no-qos", False), ("qos", True)):
            outcomes, tables, wall, service = _run_mode(
                stream, clients, use_qos, deadline_s, interval_s
            )
            _assert_exact_results(reference, tables, outcomes)
            kinds = [o[0] for o in outcomes]
            completed_lat = [o[1] for o in outcomes if o[0] != "shed"]
            shed = kinds.count("shed")
            late = kinds.count("late")
            degraded = kinds.count("degraded")
            miss_rate = (shed + late) / len(outcomes)
            pct = latency_percentiles(completed_lat or [0.0])
            p99_by_mode[(mode, clients)] = pct["p99"]
            report.add(
                mode,
                clients,
                Seconds(wall, completed_lat),
                len(completed_lat),
                degraded,
                shed,
                miss_rate,
                pct["p50"] * 1e3,
                pct["p95"] * 1e3,
                pct["p99"] * 1e3,
            )
            if use_qos and clients == max(CLIENT_COUNTS):
                snapshot = service.stats_snapshot()
                report.note(
                    f"qos@{clients}: {snapshot['qos']['shed_expired']} shed "
                    f"expired, {snapshot['qos']['shed_unmeetable']} shed "
                    f"unmeetable, {snapshot['qos']['degraded']} degraded, "
                    f"{snapshot['qos']['deadline_met']} met / "
                    f"{snapshot['qos']['deadline_missed']} missed; "
                    f"result cache {snapshot['result_cache']['exact_hits']} "
                    f"hits"
                )

    report.note(
        "completed = not shed (late full-precision results are returned "
        "and counted as misses); every non-degraded completed result is "
        "asserted bit-identical to one-at-a-time serial execution"
    )
    report.emit()

    if not SMOKE:
        for clients in (64, max(CLIENT_COUNTS)):
            flat = p99_by_mode[("qos", clients)]
            base = p99_by_mode[("qos", 1)]
            assert flat <= 5.0 * base + 0.02, (
                f"qos p99 at {clients} clients ({flat * 1e3:.1f} ms) is not "
                f"within 5x of the 1-client p99 ({base * 1e3:.1f} ms)"
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
