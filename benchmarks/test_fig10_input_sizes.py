"""Figure 10: optimized NLJ across input-size mixes and loop orders.

Paper setup: 100-D, 48 threads, |R| x |S| from 10k x 10k to 1M x 10k,
grouped by total operation count (1e8 / 1e9 / 1e10), showing (a) linear
scaling in #operations and (b) up to ~35% effect from which relation is
the inner loop.  Scaled here ~100x: clusters of 1e6 / 1e7 / 1e8 pairwise
operations, single-process vectorized NLJ.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, time_call
from repro.core import ThresholdCondition, prefetch_nlj
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

DIM = 100
CONDITION = ThresholdCondition(0.9)

#: (n_left, n_right) grouped by op count |R|*|S|.
SIZE_MIXES = pick(
    [
        (1_000, 1_000),    # 1e6 ops
        (10_000, 100),     # 1e6 ops
        (100, 10_000),     # 1e6 ops
        (10_000, 1_000),   # 1e7 ops
        (1_000, 10_000),   # 1e7 ops
        (10_000, 10_000),  # 1e8 ops
        (100_000, 1_000),  # 1e8 ops
        (1_000, 100_000),  # 1e8 ops
    ],
    [(100, 100), (200, 50)],
)


@pytest.fixture(scope="module")
def pool():
    big = unit_vectors(max(max(mix) for mix in SIZE_MIXES), DIM, stream="f10/pool")
    return big


@pytest.mark.parametrize("n_left,n_right", SIZE_MIXES)
def test_fig10_size_mix(benchmark, n_left, n_right, pool):
    left = pool[:n_left]
    right = pool[-n_right:]
    benchmark.pedantic(
        prefetch_nlj, args=(left, right, CONDITION), rounds=1, iterations=1
    )


def test_fig10_report(benchmark, pool):
    report = FigureReport(
        "fig10",
        "optimized NLJ, varying input sizes (scaled ~100x from paper)",
        ("size", "ops", "time_ms", "ns_per_op"),
    )
    measured: dict[tuple[int, int], float] = {}
    for n_left, n_right in SIZE_MIXES:
        left = pool[:n_left]
        right = pool[-n_right:]
        _, seconds = time_call(prefetch_nlj, left, right, CONDITION)
        measured[(n_left, n_right)] = seconds
        ops = n_left * n_right
        report.add(
            f"{n_left}x{n_right}", ops, seconds * 1000, seconds / ops * 1e9
        )
    # Linear-in-operations shape: the 1e8 clusters should be ~10x the 1e7
    # ones (we assert a loose 3x monotonicity to stay timing-robust).
    # Smoke mode runs toy sizes where the shape claim is meaningless.
    if not SMOKE:
        t_1e6 = measured[(1_000, 1_000)]
        t_1e7 = measured[(10_000, 1_000)]
        t_1e8 = measured[(10_000, 10_000)]
        assert t_1e7 > t_1e6, "1e7-op join should cost more than 1e6"
        assert t_1e8 > 3 * t_1e7, "1e8-op join should cost several times 1e7"
    report.note(
        "loop-order effect: rows with the same op count differ only in "
        "which relation is outer (paper observes up to ~35%)"
    )
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
