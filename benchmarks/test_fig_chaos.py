"""fig_chaos: reliability layer overhead when idle, availability under faults.

Two claims, one scenario:

* **Idle overhead.** With no faults injected, the reliability machinery
  (retry wrapper, heartbeat writes, watchdog poll, breaker lookups) must
  be invisible: p50 latency with the layer armed (``idle``) stays within
  a few percent of a run with retries and the watchdog disabled
  (``off``).
* **Availability under a fault storm.** With a deterministic 1% transient
  fault rate injected into kernels, workers, and the dispatcher
  (``storm``), the service still answers **every** query, and every
  result is bit-identical to fault-free serial execution — the retries
  recompute pure morsels, so recovery trades latency, never answers.

The driver is deliberately serial (one session, one query at a time):
per-query latency is then directly comparable across modes, while the
engine still fans morsels out across its worker pool internally.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Engine, QueryService
from repro.bench import FigureReport, Seconds, latency_percentiles
from repro.config import configure, get_config
from repro.embedding import HashingEmbedder
from repro.reliability.faults import FaultInjector, clear_injector, install_injector
from repro.relational import Catalog, DataType, Field, Table
from repro.relational.column import Column
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

N_ROWS = pick(32_000, 1_500)
N_PROBES = pick(64, 8)
DIM = pick(128, 24)
N_QUERIES = pick(400, 16)
K = 10
WARMUP = pick(24, 4)
MODEL = "chaos-model"
#: The storm arms every site serial service traffic can cross.
STORM_SITES = (
    "kernel.gemm",
    "kernel.rescore",
    "engine.worker",
    "service.dispatch",
)
STORM_RATE = 0.01
STORM_SEED = 20240
#: Idle p50 must stay within this factor of the disabled-layer p50
#: (plus a small absolute slack so micro-latency noise cannot flake).
IDLE_OVERHEAD_FACTOR = 1.03
IDLE_OVERHEAD_SLACK_S = 0.0005


def _catalog() -> Catalog:
    def table(name: str, n: int, stream: str) -> Table:
        return Table.from_columns(
            [
                Column(Field("id", DataType.INT64), np.arange(n)),
                Column(
                    Field("emb", DataType.TENSOR, dim=DIM),
                    unit_vectors(n, DIM, stream=stream),
                ),
            ]
        )

    catalog = Catalog()
    catalog.register("corpus", table("corpus", N_ROWS, "fig_chaos/base"))
    catalog.register("probes", table("probes", N_PROBES, "fig_chaos/probes"))
    return catalog


def _fresh_engine() -> Engine:
    engine = Engine(_catalog())
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def _builders(engine: Engine, qvecs) -> list:
    """Mixed traffic: mostly e-selections, some joins (cross the worker
    pool so ``engine.worker`` faults have somewhere to land)."""
    builders = []
    for i, qvec in enumerate(qvecs):
        if i % 4 == 3:
            builders.append(
                engine.query("probes").ejoin(
                    "corpus",
                    left_on="emb",
                    right_on="emb",
                    model=MODEL,
                    top_k=2,
                )
            )
        else:
            builders.append(
                engine.query("corpus").esimilar(
                    "emb", qvec, model=MODEL, top_k=K
                )
            )
    return builders


def _run_mode(qvecs, *, reliability: bool, injector: FaultInjector | None):
    """Serve the stream serially; return per-query outcome + timings."""
    config = get_config()
    saved = (config.retry_max_attempts, config.watchdog_stall_s)
    if not reliability:
        configure(retry_max_attempts=1, watchdog_stall_s=0.0)
    try:
        engine = _fresh_engine()  # reads retry/watchdog config at creation
        service = QueryService(engine, coalesce=False)
        if injector is not None:
            install_injector(injector)
        tables: list = [None] * len(qvecs)
        latencies: list[float] = []
        failed = 0
        with service.session("fig-chaos") as session:
            warm = _builders(engine, qvecs[:WARMUP])
            for builder in warm:  # build shared stores off-clock
                session.execute(builder)
            builders = _builders(engine, qvecs)
            start = time.perf_counter()
            for i, builder in enumerate(builders):
                t0 = time.perf_counter()
                try:
                    tables[i] = session.execute(builder)
                except Exception:  # noqa: BLE001 - availability accounting
                    failed += 1
                latencies.append(time.perf_counter() - t0)
            wall = time.perf_counter() - start
        return tables, latencies, failed, wall, service
    finally:
        clear_injector()
        configure(retry_max_attempts=saved[0], watchdog_stall_s=saved[1])


def test_fig_chaos_report(benchmark):
    qvecs = unit_vectors(N_QUERIES, DIM, stream="fig_chaos/queries")

    # Bit-identical reference: bare engine, no service, no faults.
    engine = _fresh_engine()
    reference = [b.execute() for b in _builders(engine, qvecs)]

    report = FigureReport(
        "fig_chaos",
        f"Reliability layer: idle overhead and availability under a "
        f"{STORM_RATE:.0%} seeded transient-fault storm "
        f"({N_ROWS}x{DIM} corpus, top-{K}, serial driver)",
        (
            "mode",
            "seconds",
            "queries",
            "ok",
            "failed",
            "injected",
            "retries",
            "availability",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ),
    )

    p50_by_mode: dict[str, float] = {}
    for mode in ("off", "idle", "storm"):
        injector = None
        if mode == "storm":
            injector = FaultInjector(
                STORM_RATE,
                seed=STORM_SEED,
                sites=STORM_SITES,
                kinds=("transient",),
            )
        tables, latencies, failed, wall, service = _run_mode(
            qvecs, reliability=(mode != "off"), injector=injector
        )
        ok = sum(1 for t in tables if t is not None)
        availability = ok / len(qvecs)
        injected = (
            0 if injector is None else injector.stats.snapshot()["injected"]
        )
        # Policy-level counter: covers both dispatch-level re-execution
        # and morsel-level retries inside the engine.
        retries = service.health().retries["retries"]
        pct = latency_percentiles(latencies)
        p50_by_mode[mode] = pct["p50"]
        report.add(
            mode,
            Seconds(wall, latencies),
            len(qvecs),
            ok,
            failed,
            injected,
            retries,
            availability,
            pct["p50"] * 1e3,
            pct["p95"] * 1e3,
            pct["p99"] * 1e3,
        )

        if mode == "storm":
            assert availability == 1.0, (
                f"storm dropped {failed} of {len(qvecs)} queries"
            )
            for i, table in enumerate(tables):
                ref = reference[i]
                assert ref.schema.names == table.schema.names
                for name in ref.schema.names:
                    assert np.array_equal(ref.array(name), table.array(name)), (
                        f"query {i}: column {name!r} differs under faults"
                    )
            if not SMOKE:
                assert injected > 0, "storm never fired"
                assert retries >= injected - failed  # recovery did the work
        else:
            assert failed == 0

    report.note(
        "off = retries and watchdog disabled; idle = reliability layer "
        "armed, no faults; storm = seeded 1% transient faults into "
        "kernel/worker/dispatch sites. Every storm result asserted "
        "bit-identical to fault-free serial execution."
    )
    report.emit()

    if not SMOKE:
        limit = (
            p50_by_mode["off"] * IDLE_OVERHEAD_FACTOR + IDLE_OVERHEAD_SLACK_S
        )
        assert p50_by_mode["idle"] <= limit, (
            f"idle reliability overhead too high: p50 "
            f"{p50_by_mode['idle'] * 1e3:.3f} ms vs disabled "
            f"{p50_by_mode['off'] * 1e3:.3f} ms"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
