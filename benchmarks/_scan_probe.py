"""Shared sweep logic for the scan-vs-probe experiments (Figures 15-17)."""

from __future__ import annotations

import numpy as np

from repro.bench import FigureReport, time_call
from repro.core import JoinCondition, index_join, tensor_join
from repro.index import HNSWIndex


def scan_with_filter(
    probes: np.ndarray,
    base: np.ndarray,
    bitmap: np.ndarray,
    condition: JoinCondition,
):
    """Tensor join with the relational filter applied first (scan path).

    The filter shrinks the base side *before* the similarity compute —
    "full relational filtering" in Table I.  Matched right offsets are
    mapped back to original ids so results are comparable across paths.
    """
    kept = np.nonzero(bitmap)[0]
    result = tensor_join(
        probes, base[kept], condition, assume_normalized=True
    )
    result.right_ids = kept[result.right_ids]
    return result


def scan_prefiltered(
    probes: np.ndarray,
    filtered_base: np.ndarray,
    condition: JoinCondition,
):
    """Tensor join excluding the filter-evaluation cost (paper's
    "Tensor Join (-filter cost)" series)."""
    return tensor_join(probes, filtered_base, condition, assume_normalized=True)


def probe_with_prefilter(
    probes: np.ndarray,
    index: HNSWIndex,
    bitmap: np.ndarray,
    condition: JoinCondition,
):
    """Index join under a pre-filter bitmap (Milvus semantics)."""
    return index_join(probes, index, condition, allowed=bitmap)


def run_sweep(
    figure: str,
    title: str,
    condition: JoinCondition,
    probes: np.ndarray,
    base: np.ndarray,
    lo: HNSWIndex,
    hi: HNSWIndex,
    bitmaps: dict[int, np.ndarray],
) -> tuple[FigureReport, dict[tuple[str, int], float]]:
    """Time all four series across the selectivity sweep."""
    report = FigureReport(
        figure, title, ("selectivity_%", "series", "time_ms", "pairs")
    )
    times: dict[tuple[str, int], float] = {}
    for pct in sorted(bitmaps):
        bitmap = bitmaps[pct]
        filtered = base[bitmap]

        result, seconds = time_call(
            scan_with_filter, probes, base, bitmap, condition
        )
        times[("tensor", pct)] = seconds
        report.add(pct, "tensor-join", seconds * 1000, len(result))

        result, seconds = time_call(
            scan_prefiltered, probes, filtered, condition
        )
        times[("tensor-nofilter", pct)] = seconds
        report.add(pct, "tensor-join(-filter)", seconds * 1000, len(result))

        result, seconds = time_call(
            probe_with_prefilter, probes, lo, bitmap, condition
        )
        times[("index-lo", pct)] = seconds
        report.add(pct, "index-join(Lo)", seconds * 1000, len(result))

        result, seconds = time_call(
            probe_with_prefilter, probes, hi, bitmap, condition
        )
        times[("index-hi", pct)] = seconds
        report.add(pct, "index-join(Hi)", seconds * 1000, len(result))
    return report, times
