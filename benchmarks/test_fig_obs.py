"""fig_obs: observability overhead — off vs sampled-out vs full tracing.

The layer's headline promise is "always on, near-zero cost sampled out":
every span site stays live in production code, and an unsampled query
pays one thread-local read per site.  This scenario measures that claim
directly, serving the same query stream at 1, 16, and 64 concurrent
clients under three modes:

* ``off``     — ``obs_enabled=False``: tracing entirely disabled;
* ``sampled`` — tracing enabled at a rate that never fires (every
  submission runs the sampled-*out* fast path, the production default);
* ``full``    — ``obs_sample_rate=1.0``: every query builds a span tree.

The non-smoke gate asserts the sampled-out p50 at one client stays
within 3% of off (plus a small absolute slack against timer noise).
Full tracing is *reported*, not gated — its cost is the price of a
debugging session, not of production serving.

The full-mode service also writes its exporter output next to the
report: ``fig_obs_metrics.prom`` (Prometheus text exposition) and
``fig_obs_traces.jsonl`` (the trace ring), so CI archives one real
sample of each format.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import Engine, QueryService
from repro.bench import FigureReport, Seconds, latency_percentiles
from repro.bench.harness import results_dir
from repro.embedding import HashingEmbedder
from repro.relational import Catalog, DataType, Field, Table
from repro.relational.column import Column
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

N_ROWS = pick(16_000, 1_000)
DIM = pick(64, 16)
#: Queries per (mode, clients) cell; divisible by every client count.
N_QUERIES = pick(192, 12)
WARMUP = pick(16, 4)
K = 10
MODEL = "obs-model"
CLIENT_COUNTS = (1, 16, 64)
MODES = ("off", "sampled", "full")
#: Sampled-out p50 must stay within this factor of off (plus slack).
SAMPLED_OVERHEAD_FACTOR = 1.03
SAMPLED_OVERHEAD_SLACK_S = 0.0002


def _fresh_engine() -> Engine:
    catalog = Catalog()
    catalog.register(
        "corpus",
        Table.from_columns(
            [
                Column(Field("id", DataType.INT64), np.arange(N_ROWS)),
                Column(
                    Field("emb", DataType.TENSOR, dim=DIM),
                    unit_vectors(N_ROWS, DIM, stream="fig_obs/base"),
                ),
            ]
        ),
    )
    engine = Engine(catalog)
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def _service(mode: str, engine: Engine) -> QueryService:
    obs = {
        "off": dict(obs_enabled=False),
        # Rate low enough that no submission ever samples in: every
        # query runs the production fast path end to end.
        "sampled": dict(obs_enabled=True, obs_sample_rate=1e-6),
        "full": dict(obs_enabled=True, obs_sample_rate=1.0, obs_ring_size=64),
    }[mode]
    # The result cache would turn repeat traffic into dictionary hits;
    # disable it so every query pays the full serving path being measured.
    return QueryService(engine, result_cache_size=0, **obs)


def _drive(service: QueryService, qvecs, n_clients: int):
    """Serve ``qvecs`` across ``n_clients`` threads; per-query latencies."""
    per_client = max(1, len(qvecs) // n_clients)
    latencies = [[] for _ in range(n_clients)]
    errors: list = []
    barrier = threading.Barrier(n_clients)

    def client(c: int) -> None:
        try:
            with service.session(f"fig-obs-c{c}") as session:
                chunk = qvecs[c * per_client : (c + 1) * per_client]
                barrier.wait()
                for qvec in chunk:
                    query = service.engine.query("corpus").esimilar(
                        "emb", qvec, model=MODEL, top_k=K
                    )
                    t0 = time.perf_counter()
                    session.execute(query)
                    latencies[c].append(time.perf_counter() - t0)
        except Exception as exc:  # noqa: BLE001 - surfaced by the caller
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(n_clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    return [lat for chunk in latencies for lat in chunk], wall


def test_fig_obs_report(benchmark):
    report = FigureReport(
        "fig_obs",
        f"Observability overhead: tracing off / sampled-out / full at "
        f"1-64 concurrent clients ({N_ROWS}x{DIM} corpus, top-{K})",
        (
            "mode",
            "clients",
            "seconds",
            "queries",
            "traced",
            "p50_ms",
            "p99_ms",
            "overhead_pct",
        ),
    )

    p50 = {}
    for mode in MODES:
        engine = _fresh_engine()
        qvecs = unit_vectors(N_QUERIES, DIM, stream="fig_obs/queries")
        with _service(mode, engine) as service:
            # Warm the embed/normalization stores and the plan cache so
            # every mode measures steady-state serving.
            with service.session("fig-obs-warm") as session:
                for qvec in qvecs[:WARMUP]:
                    session.execute(
                        service.engine.query("corpus").esimilar(
                            "emb", qvec, model=MODEL, top_k=K
                        )
                    )
            for n_clients in CLIENT_COUNTS:
                # Every client serves at least one query even at smoke
                # scale: pad the stream up to a multiple of n_clients.
                per_client = max(1, N_QUERIES // n_clients)
                cell_vecs = unit_vectors(
                    per_client * n_clients,
                    DIM,
                    stream=f"fig_obs/queries-{n_clients}",
                )
                lat, wall = _drive(service, cell_vecs, n_clients)
                pct = latency_percentiles(lat)
                p50[(mode, n_clients)] = pct["p50"]
                base = p50.get(("off", n_clients))
                overhead = (
                    0.0 if base is None else (pct["p50"] / base - 1.0) * 100.0
                )
                report.add(
                    mode,
                    n_clients,
                    Seconds(wall, lat),
                    len(lat),
                    service.tracer.sampled,
                    pct["p50"] * 1e3,
                    pct["p99"] * 1e3,
                    overhead,
                )
            if mode == "sampled":
                assert service.tracer.sampled == 0, (
                    "sampled mode unexpectedly traced a query; overhead "
                    "numbers would mix modes"
                )
            if mode == "full":
                # One real sample of each exporter format, archived by CI.
                directory = results_dir()
                directory.mkdir(parents=True, exist_ok=True)
                (directory / "fig_obs_metrics.prom").write_text(
                    service.metrics(), encoding="utf-8"
                )
                (directory / "fig_obs_traces.jsonl").write_text(
                    service.traces_jsonl(), encoding="utf-8"
                )
                assert service.tracer.sampled > 0

    report.note(
        "off = obs_enabled=False; sampled = enabled at a rate that never "
        "fires (the production default path); full = every query traced. "
        "overhead_pct compares p50 to the off mode at the same client "
        "count. The full-mode exporters' output is saved as "
        "fig_obs_metrics.prom / fig_obs_traces.jsonl."
    )
    report.emit()

    if not SMOKE:
        limit = (
            p50[("off", 1)] * SAMPLED_OVERHEAD_FACTOR
            + SAMPLED_OVERHEAD_SLACK_S
        )
        assert p50[("sampled", 1)] <= limit, (
            f"sampled-out tracing overhead too high: p50 "
            f"{p50[('sampled', 1)] * 1e3:.3f} ms vs off "
            f"{p50[('off', 1)] * 1e3:.3f} ms"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
