"""Figure 9: optimized-NLJ thread scalability.

Paper setup: 10k x 10k, 100-D, threads 1..48 (hyperthreaded, affinitized),
SIMD vs NO-SIMD.  Scaled here to 4k x 4k with threads 1..cpu_count; workers
run NumPy kernels that release the GIL, so the speedup is real parallelism.
The NO-SIMD series uses the scalar kernel at a reduced size (it is ~100x
slower) purely to show its flat, compute-starved profile.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import FigureReport, time_call
from repro.core import ThresholdCondition, parallel_join
from repro.vector import Kernel
from repro.workloads import unit_vectors

from _smoke import pick

DIM = 100
N = pick(4000, 200)
N_SCALAR = pick(400, 40)
CONDITION = ThresholdCondition(0.9)


def _threads() -> list[int]:
    cpus = os.cpu_count() or 1
    steps = [1, 2, 4, 8, 16, 32, 48]
    return [t for t in steps if t <= max(cpus, 2)]


@pytest.fixture(scope="module")
def data():
    left = unit_vectors(N, DIM, stream="f9/left")
    right = unit_vectors(N, DIM, stream="f9/right")
    return left, right


@pytest.mark.parametrize("n_threads", _threads())
def test_fig09_simd_threads(benchmark, n_threads, data):
    left, right = data
    benchmark.pedantic(
        parallel_join,
        args=(left, right, CONDITION),
        kwargs={"strategy": "nlj", "n_threads": n_threads,
                "kernel": Kernel.VECTORIZED},
        rounds=1,
        iterations=1,
    )


def test_fig09_report(benchmark, data):
    left, right = data
    report = FigureReport(
        "fig09",
        "optimized NLJ scalability (scaled: 4k x 4k, 100-D)",
        ("threads", "kernel", "time_ms", "speedup_vs_1t"),
    )
    baseline = {}
    for kernel, nl in ((Kernel.VECTORIZED, N), (Kernel.SCALAR, N_SCALAR)):
        lv, rv = left[:nl], right[:nl]
        for t in _threads():
            _, seconds = time_call(
                parallel_join,
                lv,
                rv,
                CONDITION,
                strategy="nlj",
                n_threads=t,
                kernel=kernel,
            )
            baseline.setdefault(kernel, seconds)
            report.add(
                t, kernel.value, seconds * 1000, baseline[kernel] / seconds
            )
    report.note(f"scalar series uses {N_SCALAR}x{N_SCALAR} (pure-Python kernel)")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
