"""Ablation: half-precision operands for the tensor join (Section V-A-2).

The paper motivates FP16/AMX/HBM as the hardware direction for vector-
relational processing: halving operand bytes doubles the effective cache
and memory bandwidth for high-dimensional embeddings.  NumPy lacks a fast
FP16 GEMM, so the *memory* effect is reproduced exactly (operand bytes are
measured) while compute runs FP32-accumulated; the accuracy cost of FP16
quantization is measured as top-1 agreement against the FP32 join.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureReport, time_call
from repro.core import (
    TopKCondition,
    precision_error_bound,
    tensor_join,
    tensor_join_fp16,
)
from repro.workloads import unit_vectors

from _smoke import pick

DIM = 256
SIZES = pick([(500, 5_000), (1_000, 10_000)], [(50, 500)])
CONDITION = TopKCondition(1)


@pytest.mark.parametrize("precision", ["fp32", "fp16"])
def test_fp16_cell(benchmark, precision):
    left = unit_vectors(500, DIM, stream="fp16/l")
    right = unit_vectors(5_000, DIM, stream="fp16/r")
    fn = tensor_join if precision == "fp32" else tensor_join_fp16
    benchmark.pedantic(fn, args=(left, right, CONDITION), rounds=1, iterations=1)


def test_fp16_report(benchmark):
    report = FigureReport(
        "ablation_fp16",
        "FP16 vs FP32 tensor-join operands: memory halves, top-1 agreement "
        "stays near-perfect",
        ("size", "fp32_MB", "fp16_MB", "top1_agreement_%", "fp16_ms", "fp32_ms"),
    )
    for n_left, n_right in SIZES:
        left = unit_vectors(n_left, DIM, stream=f"fp16/l/{n_left}")
        right = unit_vectors(n_right, DIM, stream=f"fp16/r/{n_right}")
        full, t32 = time_call(tensor_join, left, right, CONDITION, repeat=2)
        half, t16 = time_call(tensor_join_fp16, left, right, CONDITION, repeat=2)
        fp32_mb = (left.nbytes + right.nbytes) / 1e6
        fp16_mb = half.stats.extra["operand_bytes"] / 1e6
        agreement = len(full.pairs() & half.pairs()) / len(full.pairs()) * 100
        report.add(
            f"{n_left}x{n_right}", fp32_mb, fp16_mb, agreement,
            t16 * 1000, t32 * 1000,
        )
        assert fp16_mb == pytest.approx(fp32_mb / 2, rel=0.01)
        # FP16 error bound is tiny relative to random-vector score gaps.
        assert agreement >= 95.0, (
            f"FP16 top-1 agreement too low: {agreement:.1f}%"
        )
    report.note(
        f"quantization error bound at {DIM}-D: "
        f"{precision_error_bound(DIM):.4f} cosine units"
    )
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
