"""fig_quant: quantized access paths vs the fp32 tensor join.

Carries the paper's precision ablation (Section V-A-2) past fp16: int8
scalar quantization and product quantization shrink the scanned operand
4x / 192x, and the quantized joins replace the exact per-block top-k
merge with a cheap approximate prescreen plus an exact fp32 re-rank of a
candidate multiple.  At an equal (tight, Figure-7-regime) buffer budget
this buys >= 2x wall-clock over the fp32 tensor join while re-ranked
recall@10 stays >= 0.95 — the new accuracy/speed scenario axis the
optimizer reasons about via ``REPRO_PRECISION``.

The workload mimics real embedding geometry (clustered, low-rank,
decaying spectrum — the structure PQ exploits; an isotropic cloud is
PQ's worst case and nobody quantizes one in practice).
"""

from __future__ import annotations

import numpy as np

from repro.bench import FigureReport, speedup, time_call
from repro.core import (
    QuantizedRelation,
    TopKCondition,
    choose_scan_precision,
    quantized_tensor_join,
    tensor_join,
)
from repro.workloads import embedding_like_vectors

from _smoke import SMOKE, pick

N_LEFT = pick(2_048, 64)
N_RIGHT = pick(65_536, 512)
DIM = pick(384, 32)
K = 10
#: Equal Figure-7 buffer budget for every path: the memory-constrained
#: regime compressed access paths exist for.
BUDGET = pick(512 << 10, 16 << 10)
INT8_MULTIPLE = 4
PQ_MULTIPLE = 12
PQ_PARAMS = dict(m=8, ks=pick(256, 16))


def _workload() -> tuple[np.ndarray, np.ndarray]:
    data, _ = embedding_like_vectors(
        N_LEFT + N_RIGHT,
        DIM,
        rank=pick(48, 16),
        n_clusters=pick(1024, 32),
        noise=1.0,
        stream="fig_quant",
    )
    return data[:N_LEFT], data[N_LEFT:]


def _recall(got, ref) -> float:
    return len(got.pairs() & ref.pairs()) / max(len(ref.pairs()), 1)


def test_fig_quant_report(benchmark):
    left, right = _workload()
    condition = TopKCondition(K)
    report = FigureReport(
        "fig_quant",
        f"Quantized tensor-join scans vs fp32 at an equal "
        f"{BUDGET >> 10} KiB buffer budget (top-{K}, {DIM}-D)",
        (
            "path",
            "scan_MB",
            "build_s",
            "join_s",
            "speedup",
            "recall_at_10",
        ),
    )
    ref, t_fp32 = time_call(
        tensor_join, left, right, condition, repeat=2,
        buffer_budget_bytes=BUDGET,
    )
    fp32_mb = right.nbytes / 1e6
    report.add("tensor-fp32", fp32_mb, 0.0, t_fp32, 1.0, 1.0)

    measured: dict[str, tuple[float, float]] = {}
    for path, method, multiple, params in (
        ("tensor-int8", "int8", INT8_MULTIPLE, {}),
        ("tensor-pq", "pq", PQ_MULTIPLE, PQ_PARAMS),
    ):
        store = QuantizedRelation.build(right, method, **params)
        result, seconds = time_call(
            quantized_tensor_join, left, store, condition, repeat=2,
            rerank_multiple=multiple, buffer_budget_bytes=BUDGET,
        )
        recall = _recall(result, ref)
        report.add(
            path,
            store.code_bytes / 1e6,
            store.build_seconds,
            seconds,
            speedup(t_fp32, seconds),
            recall,
        )
        measured[method] = (speedup(t_fp32, seconds), recall)

    decision = choose_scan_precision(
        N_LEFT, N_RIGHT, K, DIM, precision="int8"
    )
    report.note(
        f"optimizer under REPRO_PRECISION=int8 picks: {decision.precision} "
        f"(fp32 cost {decision.fp32_cost:.3g}, quantized "
        f"{decision.quantized_cost:.3g}, est. recall "
        f"{decision.estimated_recall:.3f})"
    )
    report.note(
        f"candidate multiples: int8 x{INT8_MULTIPLE}, pq x{PQ_MULTIPLE}; "
        "scores of emitted pairs are exact fp32 after re-ranking"
    )
    report.emit()

    assert decision.precision == "int8"
    if not SMOKE:
        for method, (ratio, recall) in measured.items():
            assert ratio >= 2.0, f"{method} speedup {ratio:.2f}x < 2x"
            assert recall >= 0.95, f"{method} recall {recall:.3f} < 0.95"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
