"""Table I: qualitative scan-vs-index comparison, made measurable.

The paper's Table I contrasts the scan (tensor) join and the index join on
accuracy, filtering, cost, and flexibility.  This benchmark quantifies each
cell at our scale:

* accuracy — scan recall is 1.0 by construction; HNSW recall < 1.0,
* filtering — the scan's filter cost is one cheap relational pass; the
  index pays probe-traversal even for tiny allowed sets,
* cost — build time (index-only) vs per-join compute,
* flexibility — the scan accepts a threshold condition natively; the index
  must emulate it via top-k and loses qualifying pairs.
"""

from __future__ import annotations

import time

import numpy as np

from _scan_probe import probe_with_prefilter, scan_with_filter
from repro.bench import FigureReport, time_call
from repro.core import ThresholdCondition, TopKCondition, index_join, tensor_join
from repro.index import HNSWIndex
from repro.workloads import unit_vectors

from _smoke import pick

DIM = 64
N_BASE = pick(4_000, 400)
N_PROBE = pick(100, 20)


def test_table1_report(benchmark):
    probes = unit_vectors(N_PROBE, DIM, stream="t1/probe")
    base = unit_vectors(N_BASE, DIM, stream="t1/base")

    t0 = time.perf_counter()
    hnsw = HNSWIndex(DIM, m=8, ef_construction=64, ef_search=48, seed=3)
    hnsw.add(base)
    build_s = time.perf_counter() - t0

    # Accuracy: recall of HNSW top-10 vs exact scan top-10.
    k = 10
    exact = tensor_join(probes, base, TopKCondition(k), assume_normalized=True)
    approx = index_join(probes, hnsw, TopKCondition(k))
    recall = len(exact.pairs() & approx.pairs()) / len(exact.pairs())

    # Filtering: 5%-selectivity pre-filter, scan vs index.
    bitmap = np.zeros(N_BASE, dtype=bool)
    bitmap[: N_BASE // 20] = True
    _, scan_s = time_call(
        scan_with_filter, probes, base, bitmap, TopKCondition(k)
    )
    _, index_s = time_call(
        probe_with_prefilter, probes, hnsw, bitmap, TopKCondition(k)
    )

    # Flexibility: native range condition on scan vs top-k emulation.
    threshold = ThresholdCondition(0.35)
    scan_range = tensor_join(probes, base, threshold, assume_normalized=True)
    index_range = index_join(probes, hnsw, threshold, probe_k=32)

    report = FigureReport(
        "table1",
        "scan vs index join properties (measured analogue of paper Table I)",
        ("property", "scan_join", "index_join"),
    )
    report.add("accuracy (recall@10)", 1.0, recall)
    report.add("prefilter join time_ms (5% sel)", scan_s * 1000, index_s * 1000)
    report.add("build time_s", 0.0, build_s)
    report.add(
        "range-condition pairs found", len(scan_range), len(index_range)
    )
    assert recall <= 1.0
    assert len(scan_range) >= len(index_range), (
        "exact scan must find every qualifying pair the index finds"
    )
    report.note("scan: exact, any expression; index: approximate, build-time "
                "distance + mandatory top-k")
    report.emit()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
