"""Shared fixtures for figure benchmarks.

Scale note: the paper's inputs (up to 1M x 1M tuples, 48 hardware threads,
C++/MKL) are scaled down ~100x so a Python interpreter reproduces the
*shape* of every figure in minutes.  Scale factors per experiment are
documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.index import HNSWIndex
from repro.workloads import unit_vectors

from _smoke import pick

# Figures 15-17 scan-vs-probe setup (paper: 10k x 1M, 100-D, Milvus HNSW).
SCAN_PROBE_DIM = pick(256, 32)
SCAN_PROBE_BASE = pick(10_000, 500)
SCAN_PROBE_QUERIES = pick(200, 20)
#: Selectivity sweep in percent (paper sweeps 0..100).
SELECTIVITIES = (1, 5, 10, 20, 40, 60, 80, 100)


@pytest.fixture(scope="session")
def scan_probe_data() -> tuple[np.ndarray, np.ndarray]:
    """(probe vectors, base vectors) for Figures 15-17."""
    base = unit_vectors(SCAN_PROBE_BASE, SCAN_PROBE_DIM, stream="f15/base")
    probes = unit_vectors(SCAN_PROBE_QUERIES, SCAN_PROBE_DIM, stream="f15/probe")
    return probes, base


@pytest.fixture(scope="session")
def hnsw_lo(scan_probe_data) -> HNSWIndex:
    """Lower-recall/faster HNSW (paper Lo: M=32/efC=256, scaled /4)."""
    _, base = scan_probe_data
    index = HNSWIndex(
        SCAN_PROBE_DIM, m=8, ef_construction=64, ef_search=32, seed=7
    )
    index.add(base)
    return index


@pytest.fixture(scope="session")
def hnsw_hi(scan_probe_data) -> HNSWIndex:
    """Higher-recall/slower HNSW (paper Hi: M=64/efC=512, scaled /4)."""
    _, base = scan_probe_data
    index = HNSWIndex(
        SCAN_PROBE_DIM, m=16, ef_construction=128, ef_search=96, seed=7
    )
    index.add(base)
    return index


@pytest.fixture(scope="session")
def selectivity_bitmaps(scan_probe_data) -> dict[int, np.ndarray]:
    """Pre-filter bitmaps: percent -> boolean bitmap over base ids.

    Uses a shuffled exact-fraction construction so each percentage selects
    exactly that share of rows.
    """
    _, base = scan_probe_data
    n = len(base)
    rng = np.random.default_rng(1234)
    rank = rng.permutation(n)  # rank[i] = selectivity rank of row i
    bitmaps = {}
    for pct in SELECTIVITIES:
        bitmaps[pct] = rank < int(n * pct / 100)
    return bitmaps
