"""fig_service: concurrent query service throughput vs naive submission.

The paper's batching economics (Figures 12/13) argue that embedding scans
pay off when work is batched; the query service applies that argument
*across* queries.  This scenario drives the service with 1/4/16/64
concurrent clients issuing top-k E-selections against one corpus — a
zipf-ish stream where half the traffic repeats a hot pool of query
vectors — and reports QPS plus p50/p95/p99 per-query latency for:

* ``naive``      — one-query-at-a-time submission through the bare engine
                   (no service: no admission, no coalescing, no caches);
* ``svc-solo``   — the service with coalescing disabled (admission +
                   plan/result caches only);
* ``svc-coalesce`` — the full service: concurrently-submitted queries on
                   the same (table, column, model) fuse into shared
                   stacked scans.

Correctness gate: every service result — coalesced, cached, or direct —
must be bit-identical to serial execution on the bare engine.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import Engine, QueryService
from repro.bench import FigureReport, Seconds, latency_percentiles, speedup
from repro.config import rng
from repro.embedding import HashingEmbedder
from repro.relational import Catalog, DataType, Field, Table
from repro.relational.column import Column
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

N_ROWS = pick(48_000, 1_500)
DIM = pick(256, 24)
TOTAL_QUERIES = pick(256, 24)
HOT_POOL = pick(24, 4)
HOT_FRACTION = 0.5
K = 10
CLIENT_COUNTS = (1, 4, 16, 64)
COALESCE_WINDOW_S = 0.002
MODEL = "svc-model"


def _catalog() -> Catalog:
    base = unit_vectors(N_ROWS, DIM, stream="fig_service/base")
    table = Table.from_columns(
        [
            Column(Field("id", DataType.INT64), np.arange(N_ROWS)),
            Column(Field("emb", DataType.TENSOR, dim=DIM), base),
        ]
    )
    catalog = Catalog()
    catalog.register("corpus", table)
    return catalog


def _query_stream() -> list[np.ndarray]:
    """Deterministic stream: ~half hot-pool repeats, rest unique."""
    hot = unit_vectors(HOT_POOL, DIM, stream="fig_service/hot")
    unique = unit_vectors(TOTAL_QUERIES, DIM, stream="fig_service/unique")
    coin = rng("fig_service/stream")
    stream = []
    for i in range(TOTAL_QUERIES):
        if coin.random() < HOT_FRACTION:
            stream.append(hot[int(coin.integers(HOT_POOL))])
        else:
            stream.append(unique[i])
    return stream


def _fresh_engine() -> Engine:
    engine = Engine(_catalog())
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def _builder(engine: Engine, qvec: np.ndarray):
    return engine.query("corpus").esimilar("emb", qvec, model=MODEL, top_k=K)


def _run_naive(stream) -> tuple[list, float, list[float]]:
    """One-at-a-time submission through a bare engine (the baseline)."""
    engine = _fresh_engine()
    results, latencies = [], []
    start = time.perf_counter()
    for qvec in stream:
        t0 = time.perf_counter()
        results.append(_builder(engine, qvec).execute())
        latencies.append(time.perf_counter() - t0)
    return results, time.perf_counter() - start, latencies


def _run_service(stream, clients: int, coalesce: bool):
    engine = _fresh_engine()
    service = QueryService(
        engine,
        coalesce=coalesce,
        coalesce_window_s=COALESCE_WINDOW_S,
        max_inflight=max(64, clients),
    )
    results: list = [None] * len(stream)
    latencies: list = [0.0] * len(stream)
    chunks = [list(range(i, len(stream), clients)) for i in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(chunk: list[int]) -> None:
        with service.session() as session:
            barrier.wait()
            for qi in chunk:
                t0 = time.perf_counter()
                results[qi] = session.execute(
                    _builder(engine, stream[qi])
                )
                latencies[qi] = time.perf_counter() - t0

    threads = [
        threading.Thread(target=client, args=(chunk,), daemon=True)
        for chunk in chunks
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return results, wall, latencies, service


def _assert_identical(reference: list, got: list) -> None:
    for i, (a, b) in enumerate(zip(reference, got)):
        assert a.schema.names == b.schema.names, f"query {i}: schema differs"
        for name in a.schema.names:
            assert np.array_equal(a.array(name), b.array(name)), (
                f"query {i}: column {name!r} differs from serial execution"
            )


def test_fig_service_report(benchmark):
    stream = _query_stream()
    report = FigureReport(
        "fig_service",
        f"Concurrent service QPS and latency over {N_ROWS}x{DIM} corpus, "
        f"{TOTAL_QUERIES} top-{K} queries ({HOT_POOL}-vector hot pool)",
        (
            "mode",
            "clients",
            "queries",
            "seconds",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "speedup_vs_naive",
        ),
    )

    def add_row(mode, clients, wall, latencies, naive_wall):
        pct = latency_percentiles(latencies)
        report.add(
            mode,
            clients,
            len(latencies),
            Seconds(wall, latencies),
            len(latencies) / wall if wall > 0 else float("inf"),
            pct["p50"] * 1e3,
            pct["p95"] * 1e3,
            pct["p99"] * 1e3,
            speedup(naive_wall, wall),
        )

    reference, naive_wall, naive_lat = _run_naive(stream)
    add_row("naive", 1, naive_wall, naive_lat, naive_wall)

    qps_by_mode: dict[tuple[str, int], float] = {}
    for clients in CLIENT_COUNTS:
        for mode, coalesce in (("svc-solo", False), ("svc-coalesce", True)):
            results, wall, latencies, service = _run_service(
                stream, clients, coalesce
            )
            _assert_identical(reference, results)
            add_row(mode, clients, wall, latencies, naive_wall)
            qps_by_mode[(mode, clients)] = len(stream) / wall
            if mode == "svc-coalesce" and clients == max(CLIENT_COUNTS):
                snapshot = service.stats_snapshot()
                report.note(
                    f"svc-coalesce@{clients}: "
                    f"{snapshot['coalescer']['groups']} shared scans for "
                    f"{snapshot['coalescer']['coalesced_queries']} queries "
                    f"(max batch {snapshot['coalescer']['max_batch']}), "
                    f"{snapshot['result_cache']['exact_hits']} result-cache "
                    f"hits, {snapshot['plan_cache']['hits']} plan-cache hits"
                )

    report.note(
        "all service results (coalesced, cached, and direct) are asserted "
        "bit-identical to one-at-a-time serial execution"
    )
    report.emit()

    if not SMOKE:
        for clients in (16, 64):
            ratio = qps_by_mode[("svc-coalesce", clients)] * naive_wall / len(
                stream
            )
            assert qps_by_mode[("svc-coalesce", clients)] > len(stream) / naive_wall, (
                f"coalescing+caching QPS at {clients} clients "
                f"({qps_by_mode[('svc-coalesce', clients)]:.1f}) did not beat "
                f"naive ({len(stream) / naive_wall:.1f}); ratio {ratio:.2f}"
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
