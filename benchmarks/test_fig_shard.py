"""fig_shard: sharded multiprocess scan vs the thread-only baseline.

The shared scan is a dense GEMM over the whole corpus; past the point
where one process saturates, the GIL (and a single BLAS domain) caps it.
This scenario measures the shard pool two ways:

* **raw scan throughput** — one coalesced top-k candidate scan over the
  corpus, in-process (``threads`` row) vs fanned across 1/2/4/8 shard
  worker processes via :meth:`ShardPool.scan_candidates`.  Throughput is
  query-row pairs per second; the paper-style gate requires the pool to
  beat the thread-only scan by >= 2x at 4+ shards on fp32.
* **service QPS/latency** — the full query service at 1/16/64 concurrent
  clients with ``shard_procs`` in {0, 1, 2, 4, 8}, reporting QPS plus
  p50/p99 per-query latency.  Every sharded result is asserted
  bit-identical to one-at-a-time serial execution on a bare engine.

A 1-shard pool exists only to expose the IPC overhead floor: the cost
model (correctly) refuses to fan out to a single shard, so its raw row
reports the in-process path it falls back to.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import Engine, QueryService
from repro.bench import FigureReport, Seconds, latency_percentiles, speedup
from repro.embedding import HashingEmbedder
from repro.relational import Catalog, DataType, Field, Table
from repro.relational.column import Column
from repro.shard import ShardPool, leaked_segments
from repro.workloads import unit_vectors

from _smoke import SMOKE, pick

N_ROWS = pick(200_000, 4_000)
DIM = pick(96, 16)
SCAN_QUERIES = pick(64, 8)
TOTAL_QUERIES = pick(192, 16)
K = 10
KPAD = 4 * K
SHARD_COUNTS = pick((1, 2, 4, 8), (1, 2))
CLIENT_COUNTS = pick((1, 16, 64), (1, 4))
SCAN_REPEAT = pick(5, 2)
BLOCK_ROWS = pick(16_384, 1_024)
COALESCE_WINDOW_S = 0.002
MODEL = "shard-model"
KEY = ("corpus", "emb", MODEL)

_BASE = unit_vectors(N_ROWS, DIM, stream="fig_shard/base")


def _fresh_engine() -> Engine:
    table = Table.from_columns(
        [
            Column(Field("id", DataType.INT64), np.arange(N_ROWS)),
            Column(Field("emb", DataType.TENSOR, dim=DIM), _BASE),
        ]
    )
    catalog = Catalog()
    catalog.register("corpus", table)
    engine = Engine(catalog)
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def _thread_scan(normalized: np.ndarray, queries: np.ndarray):
    """The in-process candidate scan: one GEMM plus a top-kpad select."""
    scores = queries @ normalized.T
    kpad = min(KPAD, scores.shape[1])
    part = np.argpartition(-scores, kpad - 1, axis=1)[:, :kpad]
    return part, scores


def _time_raw(fn) -> Seconds:
    times = []
    for _ in range(SCAN_REPEAT):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return Seconds(min(times), times)


def _run_naive(stream) -> tuple[list, float, list[float]]:
    """One-at-a-time serial execution on a bare engine (the reference)."""
    engine = _fresh_engine()
    results, latencies = [], []
    start = time.perf_counter()
    for qvec in stream:
        t0 = time.perf_counter()
        results.append(
            engine.query("corpus")
            .esimilar("emb", qvec, model=MODEL, top_k=K)
            .execute()
        )
        latencies.append(time.perf_counter() - t0)
    return results, time.perf_counter() - start, latencies


def _run_service(stream, clients: int, shard_procs: int):
    engine = _fresh_engine()
    service = QueryService(
        engine,
        coalesce=True,
        coalesce_window_s=COALESCE_WINDOW_S,
        max_inflight=max(64, clients),
        shard_procs=shard_procs,
    )
    if service.shard_pool is not None:
        # Smoke corpora sit under the production min-rows floor; the
        # benchmark wants the shard path exercised at every scale.
        service.shard_pool.min_rows = 1
    results: list = [None] * len(stream)
    latencies: list = [0.0] * len(stream)
    chunks = [list(range(i, len(stream), clients)) for i in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(chunk: list[int]) -> None:
        with service.session() as session:
            barrier.wait()
            for qi in chunk:
                t0 = time.perf_counter()
                results[qi] = session.execute(
                    engine.query("corpus").esimilar(
                        "emb", stream[qi], model=MODEL, top_k=K
                    )
                )
                latencies[qi] = time.perf_counter() - t0

    threads = [
        threading.Thread(target=client, args=(chunk,), daemon=True)
        for chunk in chunks
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    snapshot = service.stats_snapshot()
    prefix = (
        service.shard_pool.segment_prefix
        if service.shard_pool is not None
        else None
    )
    service.shutdown()
    if prefix is not None:
        assert leaked_segments(prefix) == [], (
            f"leaked shared-memory segments: {leaked_segments(prefix)}"
        )
    return results, wall, latencies, snapshot


def _assert_identical(reference: list, got: list) -> None:
    for i, (a, b) in enumerate(zip(reference, got)):
        assert a.schema.names == b.schema.names, f"query {i}: schema differs"
        for name in a.schema.names:
            assert np.array_equal(a.array(name), b.array(name)), (
                f"query {i}: column {name!r} differs from serial execution"
            )


def test_fig_shard_report(benchmark):
    report = FigureReport(
        "fig_shard",
        f"Sharded multiprocess scan vs thread-only over {N_ROWS}x{DIM} "
        f"fp32 corpus (top-{K}, kpad {KPAD})",
        (
            "mode",
            "shards",
            "clients",
            "queries",
            "seconds",
            "qps",
            "p50_ms",
            "p99_ms",
            "speedup_vs_base",
        ),
    )

    # -- raw candidate-scan throughput ---------------------------------
    engine = _fresh_engine()
    ctx = engine.context(tag="fig_shard/baseline")
    normalized = ctx.normalized_matrix_for(KEY, _BASE)
    queries = unit_vectors(
        SCAN_QUERIES, DIM, stream="fig_shard/scan-queries"
    ).astype(np.float32)

    base_s = _time_raw(lambda: _thread_scan(normalized, queries))
    pairs = SCAN_QUERIES * N_ROWS
    report.add(
        "scan-threads", 0, 1, SCAN_QUERIES, base_s,
        SCAN_QUERIES / base_s, float("nan"), float("nan"), 1.0,
    )
    report.note(
        f"raw scan throughput baseline: {pairs / base_s / 1e6:.1f}M "
        f"query-row pairs/s in-process"
    )

    pool_throughput: dict[int, float] = {}
    topk_rows = list(range(SCAN_QUERIES))
    floors = np.full(SCAN_QUERIES, 2.0, dtype=np.float32)  # heap-only scan
    for n_shards in SHARD_COUNTS:
        pool = ShardPool(engine, n_shards, min_rows=1)
        try:
            def pool_scan():
                return pool.scan_candidates(
                    KEY, queries, n_rows=N_ROWS, topk_rows=topk_rows,
                    kpad=KPAD, thr_rows=[], thr_floors=floors[:0],
                    block_rows=BLOCK_ROWS,
                )

            first = pool_scan()  # publish + warm the workers once
            if first is None:
                # The cost model keeps 1-shard scans in-process; the
                # fallback is exactly the thread-only row above.
                report.note(
                    f"pool-{n_shards}: cost model declined the fan-out "
                    f"(fanout=1); in-process path used"
                )
                report.add(
                    f"scan-pool-{n_shards}", n_shards, 1, SCAN_QUERIES,
                    base_s, SCAN_QUERIES / base_s, float("nan"),
                    float("nan"), 1.0,
                )
                continue
            part, scores = _thread_scan(normalized, queries)
            for j in range(SCAN_QUERIES):
                kth = np.sort(scores[j])[-K]
                exact_top = set(np.nonzero(scores[j] >= kth)[0][: KPAD])
                assert exact_top <= set(first.heap_ids[j]), (
                    f"shard candidates for query {j} miss exact top-{K} rows"
                )
            pool_s = _time_raw(pool_scan)
            pool_throughput[n_shards] = pairs / pool_s
            report.add(
                f"scan-pool-{n_shards}", n_shards, 1, SCAN_QUERIES, pool_s,
                SCAN_QUERIES / pool_s, float("nan"), float("nan"),
                speedup(base_s, pool_s),
            )
        finally:
            prefix = pool.segment_prefix
            pool.close()
            assert leaked_segments(prefix) == []

    # -- service QPS / latency -----------------------------------------
    stream = [
        v.astype(np.float32)
        for v in unit_vectors(TOTAL_QUERIES, DIM, stream="fig_shard/stream")
    ]
    reference, naive_wall, naive_lat = _run_naive(stream)

    for clients in CLIENT_COUNTS:
        for shard_procs in (0, *SHARD_COUNTS):
            results, wall, latencies, snapshot = _run_service(
                stream, clients, shard_procs
            )
            _assert_identical(reference, results)
            pct = latency_percentiles(latencies)
            mode = "svc-threads" if shard_procs == 0 else "svc-shard"
            report.add(
                mode, shard_procs, clients, len(stream),
                Seconds(wall, latencies),
                len(stream) / wall if wall > 0 else float("inf"),
                pct["p50"] * 1e3, pct["p99"] * 1e3,
                speedup(naive_wall, wall),
            )
            if shard_procs == max(SHARD_COUNTS) and clients == max(
                CLIENT_COUNTS
            ):
                shard_stats = snapshot.get("shard", {})
                report.note(
                    f"svc-shard@{shard_procs}x{clients}: "
                    f"{shard_stats.get('scans', 0)} fanned scans, "
                    f"{shard_stats.get('declined', 0)} declined, "
                    f"{shard_stats.get('rows_scanned', 0)} rows scanned "
                    f"by workers, {shard_stats.get('errors', 0)} errors"
                )

    report.note(
        "all service results (sharded and thread-only) are asserted "
        "bit-identical to one-at-a-time serial execution"
    )
    report.emit()

    if not SMOKE:
        gated = [n for n in SHARD_COUNTS if n >= 4 and n in pool_throughput]
        assert gated, "no 4+ shard pool measurement to gate on"
        for n_shards in gated:
            ratio = pool_throughput[n_shards] / (pairs / base_s)
            assert ratio >= 2.0, (
                f"{n_shards}-shard fp32 scan throughput is only "
                f"{ratio:.2f}x the thread-only baseline (need >= 2x)"
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
